package serve

import (
	"errors"
	"reflect"
	"testing"

	"ssdfail/internal/faultfs"
	"ssdfail/internal/trace"
)

// The crash-recovery suite drives the journal through a deterministic
// ~1000-record fleet workload and kills the filesystem at every write
// operation in turn (torn partial write, then every later op fails).
// After each kill the journal is reopened on the surviving bytes and
// must recover exactly the accepted prefix: no accepted record lost,
// no rejected record resurrected, no corruption panic.

const (
	crashDrives  = 50
	crashDays    = 20
	crashHistory = 4
)

// crashStep is one ingest attempt of the workload, in order.
type crashStep struct {
	id    uint32
	model trace.Model
	rec   trace.DayRecord
	valid bool
}

// crashRec builds the valid daily report for one drive-day with all the
// store's monotonicity invariants satisfied.
func crashRec(drive, day int) trace.DayRecord {
	rec := trace.DayRecord{
		Day: int32(day), Age: int32(day),
		Reads: uint64(100 + drive), Writes: uint64(50 + day), Erases: uint64(day),
		CumReads:  uint64(day*1000 + drive),
		CumWrites: uint64(day*500 + drive),
		CumErases: uint64(day*100 + drive),
		PECycles:  float64(day) * 1.5,

		FactoryBadBlocks: uint32(drive % 7),
		GrownBadBlocks:   uint32(day / 3),
	}
	for k := 0; k < trace.NumErrorKinds; k++ {
		rec.Errors[k] = uint32((drive + day + k) % 3)
		rec.CumErrors[k] = uint64(day*10 + drive + k)
	}
	return rec
}

// crashWorkload returns the full ingest sequence: day-major over the
// fleet, with an invalid attempt (day regression, poisoned counters)
// interleaved before some valid records. Invalid attempts must be
// rejected at validation and must never appear after recovery.
func crashWorkload() []crashStep {
	steps := make([]crashStep, 0, crashDrives*crashDays+crashDrives*crashDays/13+1)
	for day := 0; day < crashDays; day++ {
		for drive := 0; drive < crashDrives; drive++ {
			id := uint32(1000 + drive)
			model := trace.Model(drive % trace.NumModels)
			if day > 0 && (drive+day)%13 == 0 {
				bad := crashRec(drive, day-1) // day regression
				bad.Reads = 0xDEAD
				steps = append(steps, crashStep{id: id, model: model, rec: bad})
			}
			steps = append(steps, crashStep{id: id, model: model, rec: crashRec(drive, day), valid: true})
		}
	}
	return steps
}

func crashJournalOptions(fs faultfs.FS) JournalOptions {
	return JournalOptions{
		Dir:          "/wal",
		FS:           fs,
		SegmentBytes: 8192, // ~39 frames per segment: rotation is exercised
		SyncEvery:    1,
		// A prime cadence staggers snapshots (and the prunes they
		// trigger) across segment boundaries; synchronous so every kill
		// point is deterministic.
		SnapshotEvery: 137,
	}
}

// runUntilCrash feeds steps into j until the WAL fails, returning the
// per-drive accepted records and the index of the first unprocessed
// step (len(steps) when the whole workload fit before the kill).
func runUntilCrash(t *testing.T, j *Journal, steps []crashStep, accepted map[uint32][]trace.DayRecord) int {
	t.Helper()
	for i, st := range steps {
		err := j.Upsert(st.id, st.model, st.rec)
		if err == nil {
			if !st.valid {
				t.Fatalf("invalid record (drive %d day %d) was accepted", st.id, st.rec.Day)
			}
			accepted[st.id] = append(accepted[st.id], st.rec)
			continue
		}
		if errors.Is(err, ErrJournal) {
			if !st.valid {
				t.Fatalf("invalid record (drive %d day %d) reached the WAL: %v", st.id, st.rec.Day, err)
			}
			return i
		}
		if st.valid {
			t.Fatalf("valid record (drive %d day %d) rejected: %v", st.id, st.rec.Day, err)
		}
	}
	return len(steps)
}

// checkRecovered asserts the recovered store holds exactly the accepted
// records (trimmed to the history cap) and nothing else.
func checkRecovered(t *testing.T, store *Store, steps []crashStep, accepted map[uint32][]trace.DayRecord) {
	t.Helper()
	if got, want := store.Len(), len(accepted); got != want {
		t.Fatalf("recovered %d drives, want %d", got, want)
	}
	models := make(map[uint32]trace.Model)
	for _, st := range steps {
		models[st.id] = st.model
	}
	for id, recs := range accepted {
		snap, ok := store.Get(id)
		if !ok {
			t.Fatalf("drive %d lost in recovery (%d accepted records)", id, len(recs))
		}
		if snap.Model != models[id] {
			t.Fatalf("drive %d recovered model %v, want %v", id, snap.Model, models[id])
		}
		want := recs
		if len(want) > crashHistory {
			want = want[len(want)-crashHistory:]
		}
		if !reflect.DeepEqual(snap.Recent, want) {
			t.Fatalf("drive %d recovered records diverge:\n got %+v\nwant %+v", id, snap.Recent, want)
		}
	}
}

// countWriteOps dry-runs the workload to learn how many filesystem
// write operations it performs, i.e. how many kill points exist.
func countWriteOps(t *testing.T, steps []crashStep, options func(faultfs.FS) JournalOptions) int {
	t.Helper()
	inj := faultfs.New(faultfs.Mem())
	j, err := OpenJournal(NewStore(4, crashHistory), options(inj))
	if err != nil {
		t.Fatalf("dry run open: %v", err)
	}
	accepted := make(map[uint32][]trace.DayRecord)
	if stop := runUntilCrash(t, j, steps, accepted); stop != len(steps) {
		t.Fatalf("dry run crashed at step %d with no faults armed", stop)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("dry run close: %v", err)
	}
	return inj.Count(faultfs.OpWrite)
}

// TestCrashRecoveryEveryKillPoint is the crash-consistency property
// test: for every write operation the workload performs, crash there
// (a torn partial write, then total failure), recover, and verify the
// accepted prefix survived intact. Periodically it also resumes the
// workload on the recovered journal and re-verifies the final state,
// proving a recovered log accepts writes and stays consistent.
func TestCrashRecoveryEveryKillPoint(t *testing.T) {
	steps := crashWorkload()
	writes := countWriteOps(t, steps, crashJournalOptions)
	if writes < len(steps)/2 {
		t.Fatalf("dry run saw only %d write ops for %d steps", writes, len(steps))
	}
	stride := 1
	if testing.Short() {
		stride = 17
	}
	frame := 8 + walRecordBinarySize
	for k := 1; k <= writes; k += stride {
		partial := k % frame // torn frame of every possible length
		base := faultfs.Mem()
		inj := faultfs.New(base)
		inj.Crash(k, partial)

		j, err := OpenJournal(NewStore(4, crashHistory), crashJournalOptions(inj))
		if err != nil {
			t.Fatalf("kill %d: open: %v", k, err)
		}
		accepted := make(map[uint32][]trace.DayRecord)
		stop := runUntilCrash(t, j, steps, accepted)
		j.Close() //nolint:errcheck // the filesystem is dead

		// Recover on the surviving bytes (the raw FS, not the dead
		// injector) into a fresh store.
		store2 := NewStore(4, crashHistory)
		j2, err := OpenJournal(store2, crashJournalOptions(base))
		if err != nil {
			t.Fatalf("kill %d (write op, partial %d): recovery failed: %v", k, partial, err)
		}
		rec := j2.Recovery()
		if rec.Malformed != 0 {
			t.Fatalf("kill %d: %d malformed WAL records on recovery", k, rec.Malformed)
		}
		if rec.Duplicates != 0 {
			t.Fatalf("kill %d: %d duplicate WAL records on recovery", k, rec.Duplicates)
		}
		checkRecovered(t, store2, steps, accepted)

		// Every so often, prove the recovered journal still works:
		// finish the workload on it and verify the complete fleet.
		if k%101 == 0 && stop < len(steps) {
			if n := runUntilCrash(t, j2, steps[stop:], accepted); n != len(steps[stop:]) {
				t.Fatalf("kill %d: resumed ingest crashed at step %d", k, stop+n)
			}
			if err := j2.Close(); err != nil {
				t.Fatalf("kill %d: closing resumed journal: %v", k, err)
			}
			store3 := NewStore(4, crashHistory)
			if _, err := OpenJournal(store3, crashJournalOptions(base)); err != nil {
				t.Fatalf("kill %d: reopening after resume: %v", k, err)
			}
			checkRecovered(t, store3, steps, accepted)
		} else if err := j2.Close(); err != nil {
			t.Fatalf("kill %d: closing recovered journal: %v", k, err)
		}
	}
}

// crashGroupCommitOptions configures the journal like a production
// deployment's group-commit policy: the background syncer issues one
// fsync per 8 appends and frames sit in the in-process buffer between
// boundaries. The timer flush is disabled so kill points stay
// reproducible.
func crashGroupCommitOptions(fs faultfs.FS) JournalOptions {
	o := crashJournalOptions(fs)
	o.SyncEvery = 8
	o.SyncInterval = -1
	return o
}

// runUntilCrashOrdered is runUntilCrash, but returns the indices of the
// accepted steps in acceptance (= WAL) order instead of a per-drive map.
func runUntilCrashOrdered(t *testing.T, j *Journal, steps []crashStep) (acceptedIdx []int, stop int) {
	t.Helper()
	for i, st := range steps {
		err := j.Upsert(st.id, st.model, st.rec)
		if err == nil {
			if !st.valid {
				t.Fatalf("invalid record (drive %d day %d) was accepted", st.id, st.rec.Day)
			}
			acceptedIdx = append(acceptedIdx, i)
			continue
		}
		if errors.Is(err, ErrJournal) {
			if !st.valid {
				t.Fatalf("invalid record (drive %d day %d) reached the WAL: %v", st.id, st.rec.Day, err)
			}
			return acceptedIdx, i
		}
		if st.valid {
			t.Fatalf("valid record (drive %d day %d) rejected: %v", st.id, st.rec.Day, err)
		}
	}
	return acceptedIdx, len(steps)
}

// TestCrashRecoveryGroupCommitKillPoints drives the default-style
// asynchronous group-commit path (SyncEvery > 1: background syncer,
// buffered frames) through every kill point. Acknowledged records may
// legitimately be lost up to the durability contract, so the property
// is prefix consistency rather than exact recovery: the recovered state
// must equal the snapshot plus the surviving WAL prefix — some prefix
// of the accepted sequence with no holes, no resurrected rejects — and,
// critically, records accepted AFTER recovery must survive a subsequent
// clean reopen. That last assertion is the regression test for a
// snapshot whose LSN ran ahead of the durable WAL tail: post-recovery
// appends would silently reuse snapshot-covered LSNs and vanish on the
// next boot.
func TestCrashRecoveryGroupCommitKillPoints(t *testing.T) {
	steps := crashWorkload()
	writes := countWriteOps(t, steps, crashGroupCommitOptions)
	if writes < 20 {
		t.Fatalf("dry run saw only %d write ops for %d steps", writes, len(steps))
	}
	stride := 1
	if testing.Short() {
		stride = 13
	}
	frame := 8 + walRecordBinarySize
	for k := 1; k <= writes; k += stride {
		partial := k % (frame + 11) // tear batches mid-frame and past frame boundaries
		base := faultfs.Mem()
		inj := faultfs.New(base)
		inj.Crash(k, partial)

		j, err := OpenJournal(NewStore(4, crashHistory), crashGroupCommitOptions(inj))
		if err != nil {
			t.Fatalf("kill %d: open: %v", k, err)
		}
		acceptedIdx, stop := runUntilCrashOrdered(t, j, steps)
		j.Close() //nolint:errcheck // the filesystem is dead

		store2 := NewStore(4, crashHistory)
		j2, err := OpenJournal(store2, crashGroupCommitOptions(base))
		if err != nil {
			t.Fatalf("kill %d (partial %d): recovery failed: %v", k, partial, err)
		}
		rec := j2.Recovery()
		if rec.Malformed != 0 || rec.Duplicates != 0 || rec.SnapshotCorrupt {
			t.Fatalf("kill %d: recovery reported damage: %+v", k, rec)
		}
		// LSN n is the nth accepted record, so snapshot coverage plus
		// replayed tail records is exactly how much of the accepted
		// sequence survived.
		m := int(rec.SnapshotLSN + rec.Replayed)
		if m > len(acceptedIdx) {
			t.Fatalf("kill %d: recovered %d records but only %d were accepted", k, m, len(acceptedIdx))
		}
		state := make(map[uint32][]trace.DayRecord)
		for _, si := range acceptedIdx[:m] {
			state[steps[si].id] = append(state[steps[si].id], steps[si].rec)
		}
		checkRecovered(t, store2, steps, state)

		// Re-ingest everything past the surviving prefix (skipping the
		// workload's deliberately-invalid probes, whose validity was
		// defined against the pre-crash state) and prove the recovered
		// journal keeps those records across one more clean reboot.
		resumeFrom := stop
		if m < len(acceptedIdx) {
			resumeFrom = acceptedIdx[m]
		}
		for i := resumeFrom; i < len(steps); i++ {
			st := steps[i]
			if !st.valid {
				continue
			}
			if err := j2.Upsert(st.id, st.model, st.rec); err != nil {
				t.Fatalf("kill %d: re-ingest of step %d after recovery: %v", k, i, err)
			}
			state[st.id] = append(state[st.id], st.rec)
		}
		if err := j2.Close(); err != nil {
			t.Fatalf("kill %d: closing recovered journal: %v", k, err)
		}
		store3 := NewStore(4, crashHistory)
		j3, err := OpenJournal(store3, crashGroupCommitOptions(base))
		if err != nil {
			t.Fatalf("kill %d: reopening after resumed ingest: %v", k, err)
		}
		checkRecovered(t, store3, steps, state)
		if err := j3.Close(); err != nil {
			t.Fatalf("kill %d: final close: %v", k, err)
		}
	}
}

// TestCrashRecoveryAfterCleanShutdown checks the no-fault path: a
// cleanly closed journal recovers byte-for-byte with zero truncations.
func TestCrashRecoveryAfterCleanShutdown(t *testing.T) {
	steps := crashWorkload()
	base := faultfs.Mem()
	j, err := OpenJournal(NewStore(4, crashHistory), crashJournalOptions(base))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	accepted := make(map[uint32][]trace.DayRecord)
	if stop := runUntilCrash(t, j, steps, accepted); stop != len(steps) {
		t.Fatalf("workload crashed at step %d with no faults armed", stop)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	store2 := NewStore(4, crashHistory)
	j2, err := OpenJournal(store2, crashJournalOptions(base))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	rec := j2.Recovery()
	if rec.Truncations != 0 || rec.SegmentsDropped != 0 || rec.Malformed != 0 {
		t.Fatalf("clean shutdown recovery reported damage: %+v", rec)
	}
	if rec.SnapshotLSN == 0 {
		t.Fatalf("no snapshot found after %d records with SnapshotEvery=137", len(steps))
	}
	checkRecovered(t, store2, steps, accepted)
}

// TestOpenJournalRejectsOversizedHistory: the snapshot format stores a
// u16 per-drive record count, so a history the format cannot represent
// must be refused at open instead of silently truncated at snapshot
// time.
func TestOpenJournalRejectsOversizedHistory(t *testing.T) {
	_, err := OpenJournal(NewStore(4, 1<<16), crashJournalOptions(faultfs.Mem()))
	if err == nil {
		t.Fatal("history beyond the snapshot format's u16 limit was accepted")
	}
	if _, err := OpenJournal(NewStore(4, 1<<16-1), crashJournalOptions(faultfs.Mem())); err != nil {
		t.Fatalf("history at the limit rejected: %v", err)
	}
}

// TestCrashJournalErrorLeavesStoreConsistent pins the ordering
// guarantee the handlers rely on: when the WAL append fails, the store
// is unchanged and the same record can be retried after recovery
// without tripping the duplicate-day validation.
func TestCrashJournalErrorLeavesStoreConsistent(t *testing.T) {
	base := faultfs.Mem()
	inj := faultfs.New(base)
	opt := crashJournalOptions(inj)
	store := NewStore(4, crashHistory)
	j, err := OpenJournal(store, opt)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := j.Upsert(1, 0, crashRec(1, 0)); err != nil {
		t.Fatalf("first upsert: %v", err)
	}
	inj.Add(faultfs.Fault{Op: faultfs.OpWrite, N: inj.Count(faultfs.OpWrite) + 1, Mode: faultfs.ModeFail})
	if err := j.Upsert(1, 0, crashRec(1, 1)); !errors.Is(err, ErrJournal) {
		t.Fatalf("upsert with failing WAL returned %v, want ErrJournal", err)
	}
	snap, _ := store.Get(1)
	if len(snap.Recent) != 1 || snap.Recent[0].Day != 0 {
		t.Fatalf("failed journal append mutated the store: %+v", snap.Recent)
	}
	j.Close() //nolint:errcheck // poisoned log

	// Reopen and retry the same record: it must be accepted.
	store2 := NewStore(4, crashHistory)
	j2, err := OpenJournal(store2, crashJournalOptions(base))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer j2.Close()
	if err := j2.Upsert(1, 0, crashRec(1, 1)); err != nil {
		t.Fatalf("retrying record after recovery: %v", err)
	}
	snap2, _ := store2.Get(1)
	if len(snap2.Recent) != 2 {
		t.Fatalf("recovered drive has %d records, want 2", len(snap2.Recent))
	}
}

// BenchmarkIngestInMemory and BenchmarkIngestWAL compare the ingest hot
// path without and with durability at the default fsync policy (one
// fsync per 64 appends) on the real filesystem. The acceptance bar for
// the durability layer is staying within 2x of in-memory ingest.
func BenchmarkIngestInMemory(b *testing.B) {
	store := NewStore(0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drive := i % 256
		rec := crashRec(drive, i/256)
		if err := store.Upsert(uint32(drive), trace.Model(drive%trace.NumModels), rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIngestWAL(b *testing.B) {
	j, err := OpenJournal(NewStore(0, 0), JournalOptions{
		Dir:           b.TempDir(),
		SnapshotEvery: -1, // isolate the WAL append cost
	})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drive := i % 256
		rec := crashRec(drive, i/256)
		if err := j.Upsert(uint32(drive), trace.Model(drive%trace.NumModels), rec); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := j.Sync(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(j.WALStats().Fsyncs)/float64(b.N), "fsyncs/op")
}
