// Package serve is the online fleet-scoring subsystem behind cmd/ssdserved:
// a long-running HTTP daemon that turns the paper's offline proactive-
// management study (§5, Figures 14–15) into a service. It continuously
// ingests per-drive daily telemetry into a sharded in-memory state store,
// scores the whole fleet with a worker-pool batch scorer built on
// internal/parallel, serves a ranked watchlist of the most failure-prone
// drives, hot-swaps the underlying predictor atomically without dropping
// in-flight requests, and exposes Prometheus-format metrics — all on the
// Go standard library.
//
// The pieces:
//
//   - Store (store.go): sharded drive-state map with per-shard RW locks;
//     each drive keeps a bounded window of its most recent daily reports,
//     enough for the feature pipeline's day+previous-day inputs.
//   - Registry (registry.go): holds the current predictor behind an
//     atomic pointer; Load reads and validates a serialized forest from
//     disk and swaps it in while scorers keep using the old one.
//   - Scorer (scorer.go): scores a fleet snapshot across workers and
//     ranks the result into a watchlist.
//   - Metrics (metrics.go): a minimal Prometheus text-format registry
//     (counters, gauges, histograms) with no dependencies.
//   - Server (handlers.go): the HTTP surface wiring the above together.
//
// Endpoints: POST /v1/ingest, POST /v1/ingest/batch, GET /v1/watchlist,
// GET /v1/drive/{id}, GET /v1/model, POST /v1/model/reload, GET /healthz,
// GET /metrics.
package serve
