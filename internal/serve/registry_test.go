package serve

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ssdfail/internal/dataset"
	"ssdfail/internal/fleetsim"
	"ssdfail/internal/ml/forest"
)

func TestRegistryLoadAndVersioning(t *testing.T) {
	r := NewRegistry(fixModelPath)
	if _, _, ok := r.Current(); ok {
		t.Fatal("model present before Load")
	}
	info, err := r.Load()
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 {
		t.Fatalf("startup version = %d, want 1", info.Version)
	}
	if info.ModelName != "Random Forest" || info.Lookahead != fixLookahead {
		t.Fatalf("unexpected info %+v", info)
	}
	if info.SHA256 == "" || info.SizeBytes == 0 {
		t.Fatalf("missing provenance in %+v", info)
	}
	pred, _, ok := r.Current()
	if !ok || pred == nil {
		t.Fatal("no model after Load")
	}
	info2, err := r.Load()
	if err != nil {
		t.Fatal(err)
	}
	if info2.Version != 2 {
		t.Fatalf("reload version = %d, want 2", info2.Version)
	}
}

func TestRegistryFailedLoadKeepsOldModel(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.bin")
	valid, err := os.ReadFile(fixModelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, valid, 0o644); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry(path)
	if _, err := r.Load(); err != nil {
		t.Fatal(err)
	}
	pred1, info1, _ := r.Current()

	if err := os.WriteFile(path, []byte("corrupt garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Load(); err == nil {
		t.Fatal("corrupt model accepted")
	}
	pred2, info2, ok := r.Current()
	if !ok || pred2 != pred1 || info2.Version != info1.Version {
		t.Fatal("failed load disturbed the serving model")
	}

	// Trailing garbage after a valid payload must also be rejected.
	if err := os.WriteFile(path, append(append([]byte(nil), valid...), 0xff), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Load(); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestRegistryRejectsWidthMismatch(t *testing.T) {
	// A forest trained at width 3 (not the serving pipeline's feature
	// width) would panic when scoring standard rows; the registry must
	// refuse it at load time.
	narrow := &dataset.Matrix{Width: 3}
	rng := fleetsim.NewRNG(1)
	for i := 0; i < 100; i++ {
		label := int8(i % 2)
		for f := 0; f < 3; f++ {
			narrow.X = append(narrow.X, rng.NormFloat64()+float64(label)*3)
		}
		narrow.Y = append(narrow.Y, label)
		narrow.DriveIdx = append(narrow.DriveIdx, int32(i))
		narrow.Day = append(narrow.Day, int32(i))
		narrow.Age = append(narrow.Age, int32(i))
	}
	f := forest.New(forest.Config{Trees: 3, MaxDepth: 4, MinLeaf: 2, Seed: 1})
	if err := f.Fit(narrow); err != nil {
		t.Fatal(err)
	}
	payload, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var file []byte
	file = append(file, "SSDP"...)
	file = binary.LittleEndian.AppendUint32(file, 1) // lookahead
	file = binary.LittleEndian.AppendUint32(file, uint32(len(payload)))
	file = append(file, payload...)
	path := filepath.Join(t.TempDir(), "narrow.bin")
	if err := os.WriteFile(path, file, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = NewRegistry(path).Load()
	if err == nil || !strings.Contains(err.Error(), "feature width") {
		t.Fatalf("width mismatch not rejected: %v", err)
	}
}
