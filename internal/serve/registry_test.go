package serve

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"ssdfail/internal/core"
	"ssdfail/internal/dataset"
	"ssdfail/internal/fleetsim"
	"ssdfail/internal/ml/forest"
)

func TestRegistryLoadAndVersioning(t *testing.T) {
	r := NewRegistry(fixModelPath, nil)
	if _, _, ok := r.Current(); ok {
		t.Fatal("model present before Load")
	}
	info, err := r.Load()
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 {
		t.Fatalf("startup version = %d, want 1", info.Version)
	}
	if info.ModelName != "Random Forest" || info.Lookahead != fixLookahead {
		t.Fatalf("unexpected info %+v", info)
	}
	if info.SHA256 == "" || info.SizeBytes == 0 {
		t.Fatalf("missing provenance in %+v", info)
	}
	pred, _, ok := r.Current()
	if !ok || pred == nil {
		t.Fatal("no model after Load")
	}
	info2, err := r.Load()
	if err != nil {
		t.Fatal(err)
	}
	if info2.Version != 2 {
		t.Fatalf("reload version = %d, want 2", info2.Version)
	}
}

func TestRegistryFailedLoadKeepsOldModel(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.bin")
	valid, err := os.ReadFile(fixModelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, valid, 0o644); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry(path, nil)
	if _, err := r.Load(); err != nil {
		t.Fatal(err)
	}
	pred1, info1, _ := r.Current()

	if err := os.WriteFile(path, []byte("corrupt garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Load(); err == nil {
		t.Fatal("corrupt model accepted")
	}
	pred2, info2, ok := r.Current()
	if !ok || pred2 != pred1 || info2.Version != info1.Version {
		t.Fatal("failed load disturbed the serving model")
	}

	// Trailing garbage after a valid payload must also be rejected.
	if err := os.WriteFile(path, append(append([]byte(nil), valid...), 0xff), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Load(); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

// TestHotSwapNeverMixesModelsInABatch hammers concurrent hot reloads
// against in-flight batch scoring and asserts the core swap invariant at
// per-unit granularity (via the scorer's observe hook): every unit of a
// batch is scored by the exact predictor grabbed from the registry when
// the batch began — a reload landing mid-batch must never leak its new
// model into units already in flight. It also checks that the
// (predictor, version) pairing is never torn: one version, one pointer.
// Every third reload is fed corrupt model bytes: the failed load must
// neither bump the version nor disturb the serving predictor, while
// batches keep scoring through it. Run under -race this doubles as a
// data-race probe on the whole registry/scorer path.
func TestHotSwapNeverMixesModelsInABatch(t *testing.T) {
	// A private copy of the fixture model, so failing loads can corrupt
	// the file without affecting other tests.
	path := filepath.Join(t.TempDir(), "model.bin")
	valid, err := os.ReadFile(fixModelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, valid, 0o644); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(path, nil)
	if _, err := reg.Load(); err != nil {
		t.Fatal(err)
	}

	// A small but real scoring workload from the fixture fleet.
	var units []ScoreUnit
	for i := range fixFleet.Drives {
		d := &fixFleet.Drives[i]
		n := len(d.Days)
		if n == 0 {
			continue
		}
		u := ScoreUnit{ID: d.ID, Model: d.Model, Last: d.Days[n-1]}
		if n > 1 {
			u.Prev = d.Days[n-2]
			u.HasPrev = true
		}
		units = append(units, u)
		if len(units) == 64 {
			break
		}
	}
	if len(units) < 16 {
		t.Fatalf("fixture yielded only %d scoreable units", len(units))
	}

	// Version→predictor pairing, observed from all goroutines.
	var pairs sync.Map // version int -> *core.Predictor
	checkPair := func(version int, pred *core.Predictor) {
		if prior, loaded := pairs.LoadOrStore(version, pred); loaded && prior.(*core.Predictor) != pred {
			t.Errorf("version %d paired with two predictor pointers", version)
		}
	}

	const (
		scorers = 4
		batches = 40
		reloads = 100
	)
	var mixed atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Reloader: swap the model as fast as it will go, interleaving
	// deliberately failing loads (corrupt bytes) between the good ones.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < reloads; i++ {
			if i%3 == 2 {
				if err := os.WriteFile(path, []byte("torn model bytes"), 0o644); err != nil {
					t.Error(err)
					return
				}
				prevPred, prevInfo, ok := reg.Current()
				if !ok {
					t.Error("registry empty before failing load")
					return
				}
				if _, err := reg.Load(); err == nil {
					t.Errorf("reload %d: corrupt bytes loaded", i)
					return
				}
				curPred, curInfo, ok := reg.Current()
				if !ok || curPred != prevPred || curInfo.Version != prevInfo.Version {
					t.Errorf("reload %d: failed load disturbed the serving model", i)
					return
				}
				if err := os.WriteFile(path, valid, 0o644); err != nil {
					t.Error(err)
					return
				}
				continue
			}
			info, err := reg.Load()
			if err != nil {
				t.Errorf("reload %d: %v", i, err)
				return
			}
			pred, info2, ok := reg.Current()
			if ok && info2.Version == info.Version {
				checkPair(info2.Version, pred)
			}
		}
	}()

	for g := 0; g < scorers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := NewScorer(4)
			lastVersion := 0
			for b := 0; b < batches; b++ {
				pred, info, ok := reg.Current()
				if !ok {
					t.Error("registry empty mid-run")
					return
				}
				if info.Version < lastVersion {
					t.Errorf("version went backwards: %d after %d", info.Version, lastVersion)
				}
				lastVersion = info.Version
				checkPair(info.Version, pred)
				// The batch must be scored by pred and nothing else, no
				// matter how many reloads land while it runs.
				sc.observe = func(p *core.Predictor, unit int) {
					if p != pred {
						mixed.Add(1)
					}
				}
				out := sc.Score(pred, units)
				if len(out) != len(units) {
					t.Errorf("batch returned %d of %d units", len(out), len(units))
				}
				select {
				case <-stop:
					// Keep scoring while reloads are in flight; once the
					// reloader is done a couple more batches suffice.
					if b > batches/2 {
						return
					}
				default:
				}
			}
		}()
	}
	wg.Wait()
	if n := mixed.Load(); n != 0 {
		t.Fatalf("%d units scored by a different model than their batch grabbed", n)
	}
}

func TestRegistryRejectsWidthMismatch(t *testing.T) {
	// A forest trained at width 3 (not the serving pipeline's feature
	// width) would panic when scoring standard rows; the registry must
	// refuse it at load time.
	narrow := &dataset.Matrix{Width: 3}
	rng := fleetsim.NewRNG(1)
	for i := 0; i < 100; i++ {
		label := int8(i % 2)
		for f := 0; f < 3; f++ {
			narrow.X = append(narrow.X, rng.NormFloat64()+float64(label)*3)
		}
		narrow.Y = append(narrow.Y, label)
		narrow.DriveIdx = append(narrow.DriveIdx, int32(i))
		narrow.Day = append(narrow.Day, int32(i))
		narrow.Age = append(narrow.Age, int32(i))
	}
	f := forest.New(forest.Config{Trees: 3, MaxDepth: 4, MinLeaf: 2, Seed: 1})
	if err := f.Fit(narrow); err != nil {
		t.Fatal(err)
	}
	payload, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var file []byte
	file = append(file, "SSDP"...)
	file = binary.LittleEndian.AppendUint32(file, 1) // lookahead
	file = binary.LittleEndian.AppendUint32(file, uint32(len(payload)))
	file = append(file, payload...)
	path := filepath.Join(t.TempDir(), "narrow.bin")
	if err := os.WriteFile(path, file, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = NewRegistry(path, nil).Load()
	if err == nil || !strings.Contains(err.Error(), "feature width") {
		t.Fatalf("width mismatch not rejected: %v", err)
	}
}
