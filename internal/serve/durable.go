package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"ssdfail/internal/faultfs"
	"ssdfail/internal/trace"
	"ssdfail/internal/wal"
)

// ErrJournal marks an upsert that passed validation but could not be
// made durable (WAL append or fsync failed). Handlers map it to 503:
// the record was not applied and the client should retry against a
// recovered daemon.
var ErrJournal = errors.New("serve: journal write failed")

// JournalOptions configures the durability layer.
type JournalOptions struct {
	// Dir holds WAL segments and snapshots.
	Dir string
	// FS is the filesystem (nil = real). Tests inject faults here.
	FS faultfs.FS
	// SegmentBytes and SyncEvery configure the WAL (0 = wal defaults;
	// SyncEvery wal.SyncNever disables policy fsyncs).
	SegmentBytes int64
	SyncEvery    int
	// SyncInterval bounds the durability latency of group commit
	// (SyncEvery > 1): dirty WAL bytes are fsynced at least this often.
	// 0 = wal.DefaultSyncInterval; negative disables the timer.
	SyncInterval time.Duration
	// SnapshotEvery writes a store snapshot (and prunes covered WAL
	// segments) every this many accepted records. 0 means the default
	// 4096; negative disables automatic snapshots.
	SnapshotEvery int
	// AsyncSnapshots runs automatic snapshots on a background goroutine
	// (single-flight). Synchronous snapshots keep tests deterministic.
	AsyncSnapshots bool
}

// DefaultSnapshotEvery is the automatic snapshot cadence in accepted
// records.
const DefaultSnapshotEvery = 4096

// RecoveryInfo reports what OpenJournal reconstructed at boot.
type RecoveryInfo struct {
	// SnapshotLSN is the WAL position the loaded snapshot covers (0 =
	// no snapshot).
	SnapshotLSN uint64
	// SnapshotDrives is how many drives the snapshot restored.
	SnapshotDrives int
	// SnapshotCorrupt is set when a snapshot existed but failed
	// validation; recovery continued from the WAL alone.
	SnapshotCorrupt bool
	// Replayed counts WAL records applied to the store.
	Replayed uint64
	// SkippedCovered counts WAL records skipped because the snapshot
	// already covered their LSN.
	SkippedCovered uint64
	// Duplicates counts replayed records the store rejected as already
	// present — the benign overlap between a snapshot raced against
	// concurrent ingest and the WAL tail.
	Duplicates uint64
	// Malformed counts frames whose payload failed to decode despite an
	// intact checksum (version skew); they are dropped.
	Malformed uint64
	// Truncations and TruncatedBytes surface recovery truncation of
	// torn or corrupt WAL tails.
	Truncations    int
	TruncatedBytes int64
	// SegmentsDropped counts whole WAL segments discarded during
	// recovery.
	SegmentsDropped int
}

// Journal pairs a Store with a write-ahead log and snapshots so the
// fleet state survives crashes. The ingest path validates a record
// under the shard lock, appends it to the WAL, and only then applies
// it, so WAL order matches apply order and an unlogged record is never
// visible.
type Journal struct {
	store *Store
	log   *wal.Log
	opt   JournalOptions
	rec   RecoveryInfo

	sinceSnap    atomic.Int64
	snapshotting atomic.Bool
	wg           sync.WaitGroup
	closeMu      sync.Mutex // guards closed and, with it, wg.Add vs Close
	closed       bool

	snapshotFailures atomic.Uint64
	pruned           atomic.Uint64

	bufs sync.Pool // *[]byte scratch for payload encoding
}

// OpenJournal recovers fleet state from opt.Dir into store (snapshot
// first, then the WAL tail, truncating at the first torn or corrupt
// frame) and returns a journal ready for ingest. The store should be
// empty; records already present are treated like snapshot contents.
func OpenJournal(store *Store, opt JournalOptions) (*Journal, error) {
	if opt.SnapshotEvery == 0 {
		opt.SnapshotEvery = DefaultSnapshotEvery
	}
	if store.history > math.MaxUint16 {
		// The snapshot format stores a per-drive record count as u16;
		// refusing here is better than silently truncating a recovered
		// drive's history to less than the live store retains.
		return nil, fmt.Errorf("serve: history %d exceeds the snapshot format's per-drive limit %d",
			store.history, math.MaxUint16)
	}
	j := &Journal{store: store, opt: opt}
	j.bufs.New = func() any { b := make([]byte, 0, walRecordBinarySize); return &b }
	walOpt := wal.Options{
		Dir:          opt.Dir,
		FS:           opt.FS,
		SegmentBytes: opt.SegmentBytes,
		SyncEvery:    opt.SyncEvery,
		SyncInterval: opt.SyncInterval,
	}

	payload, snapLSN, found, err := wal.LoadSnapshot(walOpt)
	if err != nil {
		if !errors.Is(err, wal.ErrSnapshotCorrupt) {
			return nil, err
		}
		// A corrupt snapshot is survivable telemetry loss, not a boot
		// failure: fall back to replaying whatever the WAL still holds.
		j.rec.SnapshotCorrupt = true
		snapLSN = 0
	} else if found {
		drives, derr := decodeStoreSnapshot(payload)
		if derr != nil {
			j.rec.SnapshotCorrupt = true
			snapLSN = 0
		} else {
			for i := range drives {
				store.Restore(drives[i])
			}
			j.rec.SnapshotLSN = snapLSN
			j.rec.SnapshotDrives = len(drives)
		}
	}

	// Floor WAL recovery at the snapshot: if a crash lost the WAL tail
	// the snapshot had already covered, records accepted after recovery
	// must not reuse covered LSNs (the replay filter below would drop
	// them on the next boot).
	walOpt.MinLSN = snapLSN
	log, wstats, err := wal.Open(walOpt, func(lsn uint64, frame []byte) {
		if lsn <= snapLSN {
			j.rec.SkippedCovered++
			return
		}
		id, model, rec, derr := decodeWALRecordBinary(frame)
		if derr != nil {
			j.rec.Malformed++
			return
		}
		if uerr := store.Upsert(id, model, rec); uerr != nil {
			j.rec.Duplicates++
		} else {
			j.rec.Replayed++
		}
	})
	if err != nil {
		return nil, err
	}
	j.log = log
	j.rec.Truncations = wstats.Truncations
	j.rec.TruncatedBytes = wstats.TruncatedBytes
	j.rec.SegmentsDropped = wstats.SegmentsDropped
	return j, nil
}

// Recovery returns what boot-time recovery reconstructed.
func (j *Journal) Recovery() RecoveryInfo { return j.rec }

// Store returns the journaled store.
func (j *Journal) Store() *Store { return j.store }

// WALStats returns the underlying log's operation counts.
func (j *Journal) WALStats() wal.Stats { return j.log.Stats() }

// SnapshotFailures counts snapshots that could not be written.
func (j *Journal) SnapshotFailures() uint64 { return j.snapshotFailures.Load() }

// PrunedSegments counts WAL segments removed after snapshots.
func (j *Journal) PrunedSegments() uint64 { return j.pruned.Load() }

// LastLSN returns the most recently appended WAL position.
func (j *Journal) LastLSN() uint64 { return j.log.LastLSN() }

// StreamFrom invokes fn for every intact WAL frame with LSN >= from,
// in order, returning the position a follower should resume from. The
// log's in-process buffer is flushed (written through, not fsynced)
// first, so every acknowledged record is visible to the stream
// immediately. A from position older than the retained segments
// returns an error wrapping wal.ErrPruned.
func (j *Journal) StreamFrom(from uint64, fn func(lsn uint64, payload []byte) error) (uint64, error) {
	if err := j.log.Flush(); err != nil {
		return from, err
	}
	return wal.ReadFrom(j.opt.FS, j.opt.Dir, from, 0, fn)
}

// Upsert validates, journals, and applies one daily report. Validation
// failures return the store's error with nothing logged; a WAL failure
// returns an error wrapping ErrJournal with the store unchanged.
func (j *Journal) Upsert(id uint32, model trace.Model, rec trace.DayRecord) error {
	bufp := j.bufs.Get().(*[]byte)
	payload := appendWALRecordBinary((*bufp)[:0], id, model, &rec)
	err := j.UpsertPayload(id, model, rec, payload)
	*bufp = payload[:0]
	j.bufs.Put(bufp)
	return err
}

// UpsertPayload is Upsert for callers that already hold the record's
// canonical WAL encoding — the binary ingest path, whose accepted frame
// payloads are appended to the log verbatim. payload must equal
// appendWALRecordBinary(nil, id, model, &rec); it is not retained after
// the call returns. The fast path allocates nothing.
func (j *Journal) UpsertPayload(id uint32, model trace.Model, rec trace.DayRecord, payload []byte) error {
	err := j.store.UpsertCommit(id, model, rec, func() error {
		if _, werr := j.log.Append(payload); werr != nil {
			return fmt.Errorf("%w: %w", ErrJournal, werr)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if j.opt.SnapshotEvery > 0 && j.sinceSnap.Add(1) >= int64(j.opt.SnapshotEvery) {
		j.maybeSnapshot()
	}
	return nil
}

// maybeSnapshot starts one snapshot, skipping if one is in flight.
func (j *Journal) maybeSnapshot() {
	if !j.snapshotting.CompareAndSwap(false, true) {
		return
	}
	run := func() {
		defer j.snapshotting.Store(false)
		if err := j.Snapshot(); err != nil {
			j.snapshotFailures.Add(1)
		}
	}
	if j.opt.AsyncSnapshots {
		// wg.Add must not race Close's wg.Wait: an Upsert finishing just
		// as the journal closes would otherwise start a snapshot against
		// a closed log.
		j.closeMu.Lock()
		if j.closed {
			j.closeMu.Unlock()
			j.snapshotting.Store(false)
			return
		}
		j.wg.Add(1)
		j.closeMu.Unlock()
		go func() { defer j.wg.Done(); run() }()
	} else {
		run()
	}
}

// Snapshot writes a point-in-time snapshot of the store and prunes WAL
// segments it fully covers. Safe to call concurrently with ingest: the
// recorded LSN is read before the store copy, so every record the copy
// might miss is replayed from the WAL on recovery.
func (j *Journal) Snapshot() error {
	lsn := j.log.LastLSN()
	// Make everything the snapshot will claim to cover durable before
	// the snapshot is published. Without this, a group-commit policy can
	// leave the durable WAL tail behind the snapshot LSN; after a crash
	// the log would hand out LSNs the snapshot already covers, and the
	// next boot's replay filter would silently drop those records.
	if err := j.log.Sync(); err != nil {
		return err
	}
	drives := j.store.Drives()
	payload := encodeStoreSnapshot(drives)
	if err := j.log.WriteSnapshot(lsn, payload); err != nil {
		return err
	}
	j.sinceSnap.Store(0)
	if n, err := j.log.Prune(lsn + 1); err == nil {
		j.pruned.Add(uint64(n))
	}
	return nil
}

// Sync flushes the WAL to stable storage.
func (j *Journal) Sync() error { return j.log.Sync() }

// Close waits for an in-flight snapshot, then syncs and closes the WAL.
func (j *Journal) Close() error {
	j.closeMu.Lock()
	j.closed = true
	j.closeMu.Unlock()
	j.wg.Wait()
	return j.log.Close()
}

// Store snapshot payload: version u32, drive count u32, then per drive
// the ID, model, retained-record count (u16), and fixed-width records.
// OpenJournal rejects histories above the u16 limit, so the count never
// silently truncates a drive's retained window.
const storeSnapshotVersion = 1

func encodeStoreSnapshot(drives []DriveSnapshot) []byte {
	size := 8
	for i := range drives {
		n := len(drives[i].Recent)
		if n > math.MaxUint16 {
			n = math.MaxUint16
		}
		size += 7 + n*dayRecordBinarySize
	}
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint32(buf, storeSnapshotVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(drives)))
	for i := range drives {
		d := &drives[i]
		recent := d.Recent
		if len(recent) > math.MaxUint16 {
			// Unreachable while OpenJournal enforces the history limit;
			// kept so a future format bug degrades to a shorter window
			// instead of a corrupt payload.
			recent = recent[len(recent)-math.MaxUint16:]
		}
		buf = binary.LittleEndian.AppendUint32(buf, d.ID)
		buf = append(buf, byte(d.Model))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(recent)))
		for r := range recent {
			buf = appendDayRecordBinary(buf, &recent[r])
		}
	}
	return buf
}

func decodeStoreSnapshot(b []byte) ([]DriveSnapshot, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("serve: snapshot header truncated")
	}
	if v := binary.LittleEndian.Uint32(b); v != storeSnapshotVersion {
		return nil, fmt.Errorf("serve: unsupported snapshot version %d", v)
	}
	n := binary.LittleEndian.Uint32(b[4:])
	b = b[8:]
	// Cap the preallocation so a hostile count cannot balloon memory.
	alloc := int(n)
	if alloc > 1<<16 {
		alloc = 1 << 16
	}
	drives := make([]DriveSnapshot, 0, alloc)
	for i := uint32(0); i < n; i++ {
		if len(b) < 7 {
			return nil, fmt.Errorf("serve: snapshot drive %d header truncated", i)
		}
		d := DriveSnapshot{ID: binary.LittleEndian.Uint32(b), Model: trace.Model(b[4])}
		if int(d.Model) >= trace.NumModels {
			return nil, fmt.Errorf("serve: snapshot drive %d has unknown model %d", i, b[4])
		}
		nrec := int(binary.LittleEndian.Uint16(b[5:]))
		b = b[7:]
		d.Recent = make([]trace.DayRecord, nrec)
		for r := 0; r < nrec; r++ {
			var err error
			d.Recent[r], b, err = decodeDayRecordBinary(b)
			if err != nil {
				return nil, fmt.Errorf("serve: snapshot drive %d: %w", i, err)
			}
		}
		drives = append(drives, d)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("serve: %d trailing bytes after snapshot", len(b))
	}
	return drives, nil
}
