package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"ssdfail/internal/core"
	"ssdfail/internal/fleetsim"
	"ssdfail/internal/ml/forest"
	"ssdfail/internal/trace"
)

// Shared fixture: a simulated fleet and a small trained predictor saved
// to disk, built once for the whole package.
var (
	fixFleet     *trace.Fleet
	fixModelPath string
	fixLookahead = 3
)

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "ssdserved-test")
	if err != nil {
		log.Fatal(err)
	}
	cfg := fleetsim.DefaultConfig(7, 80)
	cfg.HorizonDays = 1200
	fleet, _, err := fleetsim.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fixFleet = fleet
	study := core.NewStudy(fleet)
	fcfg := forest.DefaultConfig()
	fcfg.Trees = 20
	fcfg.Seed = 7
	pred, err := study.TrainPredictor(core.PredictorOptions{
		Lookahead: fixLookahead,
		Factory:   forest.NewFactory(fcfg),
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fixModelPath = filepath.Join(dir, "model.bin")
	if err := pred.Save(fixModelPath); err != nil {
		log.Fatal(err)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{ModelPath: fixModelPath}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// fleetDay collects, for every drive with at least offset+1 reports,
// the report offset steps back from its last one, as wire records.
func fleetDay(offset int) []IngestRecord {
	var out []IngestRecord
	for di := range fixFleet.Drives {
		d := &fixFleet.Drives[di]
		j := len(d.Days) - 1 - offset
		if j < 0 {
			continue
		}
		out = append(out, WireRecord(d.ID, d.Model, &d.Days[j]))
	}
	return out
}

func postJSON(t *testing.T, url string, v any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, data
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if v != nil {
		if err := json.Unmarshal(data, v); err != nil {
			t.Fatalf("unmarshal %s: %v\n%s", url, err, data)
		}
	}
	return resp
}

func TestServerIngestScoreWatchlistRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, nil)

	// Ingest two consecutive simulated fleet days (previous day first,
	// so the bad-block delta feature has its reference report).
	prevDay, lastDay := fleetDay(1), fleetDay(0)
	if len(lastDay) < 200 {
		t.Fatalf("fixture fleet has only %d drives with reports, want >= 200", len(lastDay))
	}
	var ack struct {
		Accepted int `json:"accepted"`
		Rejected int `json:"rejected"`
	}
	resp, data := postJSON(t, ts.URL+"/v1/ingest/batch", prevDay)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch 1: status %d: %s", resp.StatusCode, data)
	}
	resp, data = postJSON(t, ts.URL+"/v1/ingest/batch", lastDay)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch 2: status %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Accepted != len(lastDay) || ack.Rejected != 0 {
		t.Fatalf("batch 2 ack = %+v, want %d accepted", ack, len(lastDay))
	}

	// Health reflects the ingested fleet.
	var health struct {
		Status       string `json:"status"`
		Drives       int    `json:"drives"`
		ModelVersion int    `json:"model_version"`
	}
	if resp := getJSON(t, ts.URL+"/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if health.Status != "ok" || health.Drives != len(lastDay) || health.ModelVersion != 1 {
		t.Fatalf("healthz = %+v", health)
	}

	// The ranked watchlist over the whole fleet is non-empty and sorted.
	var wl struct {
		ModelVersion int     `json:"model_version"`
		FleetSize    int     `json:"fleet_size"`
		Count        int     `json:"count"`
		Threshold    float64 `json:"threshold"`
		Items        []struct {
			DriveID   uint32  `json:"drive_id"`
			Model     string  `json:"model"`
			Score     float64 `json:"score"`
			Threshold float64 `json:"threshold"`
			Margin    float64 `json:"margin"`
		} `json:"items"`
	}
	if resp := getJSON(t, ts.URL+"/v1/watchlist?threshold=0&k=25", &wl); resp.StatusCode != http.StatusOK {
		t.Fatalf("watchlist status %d", resp.StatusCode)
	}
	if wl.FleetSize != len(lastDay) {
		t.Fatalf("fleet_size = %d, want %d", wl.FleetSize, len(lastDay))
	}
	if wl.Count != 25 || len(wl.Items) != 25 {
		t.Fatalf("count = %d items = %d, want 25", wl.Count, len(wl.Items))
	}
	if !sort.SliceIsSorted(wl.Items, func(a, b int) bool {
		return wl.Items[a].Score > wl.Items[b].Score
	}) {
		t.Fatal("watchlist not sorted by descending score")
	}
	for _, it := range wl.Items {
		if it.Score < 0 || it.Score > 1 {
			t.Fatalf("score %v outside [0,1]", it.Score)
		}
		if _, err := trace.ParseModel(it.Model); err != nil {
			t.Fatalf("bad model in item: %v", err)
		}
		// Every item carries its operating point and margin (the
		// remediation planner's inputs), consistent with the envelope.
		if it.Threshold != wl.Threshold {
			t.Fatalf("item threshold %v != envelope threshold %v", it.Threshold, wl.Threshold)
		}
		if got, want := it.Margin, it.Score-it.Threshold; got != want {
			t.Fatalf("margin = %v, want score-threshold = %v", got, want)
		}
	}

	// Single-drive inspection agrees with the watchlist's top drive.
	top := wl.Items[0]
	var drive struct {
		DriveID uint32  `json:"drive_id"`
		Days    int     `json:"days"`
		Score   float64 `json:"score"`
	}
	if resp := getJSON(t, fmt.Sprintf("%s/v1/drive/%d", ts.URL, top.DriveID), &drive); resp.StatusCode != http.StatusOK {
		t.Fatalf("drive status %d", resp.StatusCode)
	}
	if drive.Score != top.Score {
		t.Fatalf("drive score %v != watchlist score %v", drive.Score, top.Score)
	}
	if drive.Days != 2 {
		t.Fatalf("drive days = %d, want 2", drive.Days)
	}

	// Metrics report the ingest and scoring activity.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != MetricsContentType {
		t.Fatalf("metrics content type %q", ct)
	}
	total := len(prevDay) + len(lastDay)
	for _, want := range []string{
		fmt.Sprintf("ssdserved_ingest_records_total %d", total),
		fmt.Sprintf("ssdserved_fleet_drives %d", len(lastDay)),
		fmt.Sprintf("ssdserved_scored_drives_total %d", len(lastDay)),
		"ssdserved_model_version 1",
		// The startup load counts as a load, never as a reload: promotion
		// accounting (trainer non-inferiority gate) reads reloads_total as
		// "hot swaps performed", which must start at zero.
		"ssdserved_model_loads_total 1",
		"ssdserved_model_reloads_total 0",
		`ssdserved_http_requests_total{handler="ingest_batch",code="202"} 2`,
		"ssdserved_http_request_duration_seconds_bucket",
		"ssdserved_scoring_duration_seconds_count 1",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestServerWatchlistDefaultThreshold(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.WatchlistThreshold = 2 })
	resp, data := postJSON(t, ts.URL+"/v1/ingest/batch", fleetDay(0))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status %d: %s", resp.StatusCode, data)
	}
	// An impossible default threshold filters everything: the endpoint
	// still answers with an empty ranked list.
	var wl struct {
		Count     int     `json:"count"`
		Threshold float64 `json:"threshold"`
	}
	if resp := getJSON(t, ts.URL+"/v1/watchlist", &wl); resp.StatusCode != http.StatusOK {
		t.Fatalf("watchlist status %d", resp.StatusCode)
	}
	if wl.Count != 0 || wl.Threshold != 2 {
		t.Fatalf("watchlist = %+v, want empty at threshold 2", wl)
	}
}

func TestServerRejectsBadInput(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.MaxBodyBytes = 2048 })

	post := func(path, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return resp
	}

	if resp := post("/v1/ingest", "{not json"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
	if resp := post("/v1/ingest", `{"drive_id":1}{"drive_id":2}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("trailing data: status %d, want 400", resp.StatusCode)
	}
	big := `[` + strings.Repeat(`{"drive_id":1,"model":"MLC-A"},`, 200) + `]`
	if resp := post("/v1/ingest/batch", big); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
	if resp := post("/v1/ingest", `{"drive_id":1,"model":"MLC-Z","day":1}`); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unknown model: status %d, want 422", resp.StatusCode)
	}
	if resp := post("/v1/ingest", `{"drive_id":1,"model":"MLC-A","day":-2}`); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("negative day: status %d, want 422", resp.StatusCode)
	}
	if resp := post("/v1/ingest", `{"drive_id":1,"model":"MLC-A","day":1,"errors":{"bogus_kind":1}}`); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unknown error kind: status %d, want 422", resp.StatusCode)
	}

	// A stale (replayed) day conflicts with retained state.
	ok := post("/v1/ingest", `{"drive_id":9,"model":"MLC-A","day":5,"age":5}`)
	if ok.StatusCode != http.StatusAccepted {
		t.Fatalf("valid ingest: status %d", ok.StatusCode)
	}
	if resp := post("/v1/ingest", `{"drive_id":9,"model":"MLC-A","day":5,"age":5}`); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("stale day: status %d, want 422", resp.StatusCode)
	}

	if resp := getJSON(t, ts.URL+"/v1/drive/notanumber", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad drive id: status %d, want 400", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/drive/424242", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown drive: status %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/watchlist?k=oops", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad k: status %d, want 400", resp.StatusCode)
	}

	// Rejections are visible on /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`ssdserved_ingest_rejected_total{reason="invalid_record"}`,
		`ssdserved_ingest_rejected_total{reason="store_conflict"} 1`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestServerConcurrentIngestAndReload exercises the hot-swap path under
// load: one goroutine streams ingest batches, one hammers model reload
// (against a file being rewritten with valid and corrupt payloads), and
// one reads watchlists. Run under -race this validates that scoring
// never observes a torn model swap.
func TestServerConcurrentIngestAndReload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.bin")
	valid, err := os.ReadFile(fixModelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, valid, 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, func(c *Config) { c.ModelPath = path })

	const rounds = 30
	var wg sync.WaitGroup
	errs := make(chan error, 3)

	wg.Add(1)
	go func() { // ingest: a fresh sliver of fleet per round
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			day := int32(1000 + i)
			batch := make([]IngestRecord, 0, 40)
			for d := 0; d < 40; d++ {
				r := rec(day)
				ir := WireRecord(uint32(5000+d), trace.MLCB, &r)
				batch = append(batch, ir)
			}
			body, _ := json.Marshal(batch)
			resp, err := http.Post(ts.URL+"/v1/ingest/batch", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				errs <- fmt.Errorf("ingest round %d: status %d", i, resp.StatusCode)
				return
			}
		}
	}()

	wg.Add(1)
	go func() { // reload, alternating valid and corrupt model files
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			payload := valid
			if i%3 == 2 {
				payload = []byte("garbage")
			}
			if err := os.WriteFile(path, payload, 0o644); err != nil {
				errs <- err
				return
			}
			resp, err := http.Post(ts.URL+"/v1/model/reload", "application/json", nil)
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			wantCorrupt := i%3 == 2
			if wantCorrupt && resp.StatusCode != http.StatusInternalServerError {
				errs <- fmt.Errorf("reload round %d: corrupt model gave status %d", i, resp.StatusCode)
				return
			}
			if !wantCorrupt && resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("reload round %d: status %d", i, resp.StatusCode)
				return
			}
		}
	}()

	wg.Add(1)
	go func() { // watchlist reads throughout
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			resp, err := http.Get(ts.URL + "/v1/watchlist?threshold=0")
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("watchlist round %d: status %d", i, resp.StatusCode)
				return
			}
		}
	}()

	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// The daemon survived: the model serves, versions advanced, and the
	// failure counter reflects the corrupt reloads.
	var info ModelInfo
	if resp := getJSON(t, ts.URL+"/v1/model", &info); resp.StatusCode != http.StatusOK {
		t.Fatalf("model status %d", resp.StatusCode)
	}
	if info.Version < 2 {
		t.Fatalf("model version %d, want >= 2 after reloads", info.Version)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "ssdserved_model_reload_failures_total 10") {
		t.Errorf("metrics missing reload failure count:\n%s", grepLines(string(metrics), "reload"))
	}
	// Exact accounting of the split counters under load: 20 of the 30
	// reload attempts succeeded, and loads additionally counts the
	// startup load.
	if !strings.Contains(string(metrics), "ssdserved_model_reloads_total 20") {
		t.Errorf("metrics missing successful reload count:\n%s", grepLines(string(metrics), "reload"))
	}
	if !strings.Contains(string(metrics), "ssdserved_model_loads_total 21") {
		t.Errorf("metrics missing load count:\n%s", grepLines(string(metrics), "loads"))
	}
}

// TestModelReloadFailurePaths pins the reload failure path end to end:
// corrupt challenger bytes must fail the reload with a 500, advance
// only the failure counter, and leave the serving model — identity,
// version, and scoreability — untouched; restoring valid bytes must
// succeed and advance exactly the load/reload counters.
func TestModelReloadFailurePaths(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.bin")
	valid, err := os.ReadFile(fixModelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, valid, 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, func(c *Config) { c.ModelPath = path })

	counters := func() (loads, reloads, failures string) {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		sample := func(name string) string {
			for _, line := range strings.Split(string(body), "\n") {
				if strings.HasPrefix(line, name+" ") {
					return line
				}
			}
			return ""
		}
		return sample("ssdserved_model_loads_total"),
			sample("ssdserved_model_reloads_total"),
			sample("ssdserved_model_reload_failures_total")
	}

	// Startup: one load, zero reloads, zero failures.
	if l, r, f := counters(); l != "ssdserved_model_loads_total 1" ||
		r != "ssdserved_model_reloads_total 0" ||
		f != "ssdserved_model_reload_failures_total 0" {
		t.Fatalf("startup counters: %q %q %q", l, r, f)
	}
	before := ModelInfo{}
	getJSON(t, ts.URL+"/v1/model", &before)

	// Corrupt challenger bytes: the reload must fail loudly...
	if err := os.WriteFile(path, []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/v1/model/reload", nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("corrupt reload: status %d body %s", resp.StatusCode, body)
	}
	if l, r, f := counters(); l != "ssdserved_model_loads_total 1" ||
		r != "ssdserved_model_reloads_total 0" ||
		f != "ssdserved_model_reload_failures_total 1" {
		t.Fatalf("post-corrupt counters: %q %q %q", l, r, f)
	}
	// ...and the champion keeps serving, byte for byte.
	after := ModelInfo{}
	getJSON(t, ts.URL+"/v1/model", &after)
	if after.Version != before.Version || after.SHA256 != before.SHA256 {
		t.Fatalf("serving model changed under a failed reload: %+v -> %+v", before, after)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/ingest/batch", fleetDay(0)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest after failed reload: status %d", resp.StatusCode)
	}

	// Valid bytes again: the swap lands and the split counters advance.
	if err := os.WriteFile(path, valid, 0o644); err != nil {
		t.Fatal(err)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/model/reload", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("valid reload: status %d body %s", resp.StatusCode, body)
	}
	if l, r, f := counters(); l != "ssdserved_model_loads_total 2" ||
		r != "ssdserved_model_reloads_total 1" ||
		f != "ssdserved_model_reload_failures_total 1" {
		t.Fatalf("post-recovery counters: %q %q %q", l, r, f)
	}
	final := ModelInfo{}
	getJSON(t, ts.URL+"/v1/model", &final)
	if final.Version != before.Version+1 {
		t.Fatalf("version %d after recovery, want %d", final.Version, before.Version+1)
	}
}

// grepLines returns the lines of s containing substr, for focused
// failure messages.
func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestLoadShedding fills a handler's concurrency bound and checks the
// excess request is shed with 429 + Retry-After instead of queueing.
func TestLoadShedding(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.MaxInflightIngest = 1
		c.MaxInflightScores = 1
	})
	s.ingestSem <- struct{}{} // occupy the only ingest slot
	resp, body := postJSON(t, ts.URL+"/v1/ingest", fleetDay(0)[0])
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want 1", ra)
	}
	<-s.ingestSem
	// Slot free again: the same request now succeeds.
	if resp, body := postJSON(t, ts.URL+"/v1/ingest", fleetDay(0)[0]); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("after release status = %d: %s", resp.StatusCode, body)
	}

	s.scoreSem <- struct{}{}
	resp, err := http.Get(ts.URL + "/v1/watchlist")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("watchlist status = %d, want 429", resp.StatusCode)
	}
	<-s.scoreSem

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		`ssdserved_load_shed_total{handler="ingest"} 1`,
		`ssdserved_load_shed_total{handler="watchlist"} 1`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q:\n%s", want, grepLines(string(metrics), "shed"))
		}
	}
}
