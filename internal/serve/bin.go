package serve

// Binary batch ingest: POST /v1/ingest/bin.
//
// The body is a 12-byte batch header followed by one trace frame per
// record:
//
//	"SSDB" | version u32 LE (=1) | count u32 LE
//	count × ( len u32 LE | crc32c u32 LE | WAL record payload )
//
// Each frame payload is exactly the record's canonical WAL encoding
// (appendWALRecordBinary), and the frame header is exactly the WAL's
// frame header, so an accepted payload is appended to the journal
// verbatim — decode validates, nothing re-encodes. The steady-state
// path allocates nothing: the body, the rejection list, and the
// response are pooled, and errors on the hot path are sentinels.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"ssdfail/internal/trace"
)

const (
	binIngestMagic   = "SSDB"
	binIngestVersion = 1

	// BinHeaderSize is the byte length of the batch header.
	BinHeaderSize = 12
	// BinRecordSize is the payload length of one record frame — exactly
	// the WAL record the daemon appends on accept.
	BinRecordSize = walRecordBinarySize
	// BinFrameSize is the on-wire cost of one record including its frame
	// header. Every frame in a batch has exactly this size.
	BinFrameSize = trace.FrameOverhead + BinRecordSize
)

// AppendBinHeader appends the /v1/ingest/bin batch header for count
// records.
func AppendBinHeader(dst []byte, count int) []byte {
	dst = append(dst, binIngestMagic...)
	dst = binary.LittleEndian.AppendUint32(dst, binIngestVersion)
	return binary.LittleEndian.AppendUint32(dst, uint32(count))
}

// AppendBinRecord appends one framed record to a /v1/ingest/bin body.
func AppendBinRecord(dst []byte, id uint32, model trace.Model, rec *trace.DayRecord) []byte {
	start := len(dst)
	dst = trace.BeginFrame(dst)
	dst = appendWALRecordBinary(dst, id, model, rec)
	return trace.EndFrame(dst, start)
}

// ParseBinHeader validates a batch header and returns the declared
// record count and the frame bytes that follow.
func ParseBinHeader(b []byte) (count int, rest []byte, err error) {
	if len(b) < BinHeaderSize {
		return 0, nil, fmt.Errorf("serve: binary batch header truncated: %d of %d bytes", len(b), BinHeaderSize)
	}
	if string(b[:4]) != binIngestMagic {
		return 0, nil, errors.New("serve: not a binary ingest batch (bad magic)")
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != binIngestVersion {
		return 0, nil, fmt.Errorf("serve: unsupported binary ingest version %d", v)
	}
	return int(binary.LittleEndian.Uint32(b[8:])), b[BinHeaderSize:], nil
}

// binState is the pooled per-request scratch for the binary ingest
// path: the body buffer, the capped rejection list, and the response
// bytes. Ownership rule: a binState (and every slice it holds) belongs
// to exactly one request between Get and Put; nothing that escapes the
// handler — store records, WAL buffers, response writers — may retain a
// reference into it.
type binState struct {
	body []byte
	resp []byte
	errs []batchError
}

// binResult is what processing one binary batch produced. topErr is the
// top-level "error" field for non-2xx shapes; empty on 202/422.
type binResult struct {
	accepted int
	rejected int
	dropped  int
	code     int
	topErr   string
}

// acquireBinState checks a scratch state out of the pool. Callers own
// it until the paired releaseBinState; nothing reachable from it may
// outlive that window.
func (s *Server) acquireBinState() *binState {
	return s.binStates.Get().(*binState)
}

// releaseBinState returns a scratch state to the pool.
func (s *Server) releaseBinState(st *binState) {
	s.binStates.Put(st)
}

// runBinBatch is the zero-alloc core shared by the HTTP handler and the
// alloc benchmarks: process one binary batch into st and render the
// reply into st.resp.
func (s *Server) runBinBatch(ctx context.Context, body []byte, st *binState) binResult {
	res := s.processBinBatch(ctx, body, st)
	st.renderBinReply(res)
	return res
}

func (s *Server) handleIngestBin(w http.ResponseWriter, r *http.Request) {
	if !s.acquire(w, "ingest_bin", s.ingestSem) {
		return
	}
	defer func() { <-s.ingestSem }()
	st := s.acquireBinState()
	defer s.releaseBinState(st)
	body, code, err := s.readBinBody(r, st)
	if err != nil {
		writeError(w, code, err.Error())
		return
	}
	res := s.runBinBatch(r.Context(), body, st)
	h := w.Header()
	if _, ok := h["Content-Type"]; !ok {
		h.Set("Content-Type", "application/json")
	}
	w.WriteHeader(res.code)
	//ssdlint:allow droppederr response write failed means the client hung up; the records are already applied
	w.Write(st.resp)
}

// readBinBody reads the request body into the pooled buffer. Bodies
// with a declared length read straight into place without allocating;
// chunked bodies fall back to a capped copy.
func (s *Server) readBinBody(r *http.Request, st *binState) ([]byte, int, error) {
	if r.ContentLength > s.cfg.MaxBodyBytes {
		return nil, http.StatusRequestEntityTooLarge,
			fmt.Errorf("body exceeds %d bytes", s.cfg.MaxBodyBytes)
	}
	if n := r.ContentLength; n >= 0 {
		if int64(cap(st.body)) < n {
			st.body = make([]byte, n)
		}
		st.body = st.body[:n]
		if _, err := io.ReadFull(r.Body, st.body); err != nil {
			return nil, http.StatusBadRequest, fmt.Errorf("reading body: %v", err)
		}
		return st.body, 0, nil
	}
	// Unknown length (chunked). Rare; allocation here is fine.
	b, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1))
	if err != nil {
		return nil, http.StatusBadRequest, fmt.Errorf("reading body: %v", err)
	}
	if int64(len(b)) > s.cfg.MaxBodyBytes {
		return nil, http.StatusRequestEntityTooLarge,
			fmt.Errorf("body exceeds %d bytes", s.cfg.MaxBodyBytes)
	}
	st.body = append(st.body[:0], b...)
	return st.body, 0, nil
}

// processBinBatch decodes, validates, and applies one binary batch.
// Accepted frame payloads are journaled verbatim. Mirrors the JSON
// batch semantics: per-record rejections continue, a mid-batch deadline
// or WAL failure stops with exact accounting, and records already
// applied stay applied.
func (s *Server) processBinBatch(ctx context.Context, body []byte, st *binState) binResult {
	st.errs = st.errs[:0]
	res := binResult{code: http.StatusAccepted}
	count, rest, err := ParseBinHeader(body)
	if err != nil {
		return binResult{code: http.StatusBadRequest, topErr: err.Error()}
	}
	// Every frame has a fixed stride, so the declared count must match
	// the body length exactly; this rejects length-prefix overflow and
	// truncation up front, before any record is applied.
	if int64(count)*int64(BinFrameSize) != int64(len(rest)) {
		return binResult{code: http.StatusBadRequest,
			topErr: "batch length does not match declared record count"}
	}
	for i := 0; i < count; i++ {
		// A large batch can outlive the request deadline; stop cleanly
		// with an exact accepted count rather than churn for a client
		// that already gave up.
		if i&127 == 0 && ctx.Err() != nil {
			res.code = http.StatusServiceUnavailable
			res.topErr = "request deadline exceeded mid-batch"
			res.dropped = count - i
			return res
		}
		payload, next, ferr := trace.NextFrame(rest, BinRecordSize)
		if ferr != nil {
			// Frame corruption is a transport-level failure, not a bad
			// record: everything before this frame is applied, the rest of
			// the body cannot be trusted.
			res.code = http.StatusBadRequest
			//ssdlint:allow hotalloc terminal corrupt-frame reply: one allocation per aborted batch, never on the accept path
			res.topErr = "corrupt frame: " + ferr.Error()
			res.dropped = count - i
			return res
		}
		rest = next
		if len(payload) != BinRecordSize || payload[BinRecordSize-1]&^3 != 0 {
			// A short-but-valid frame or non-canonical flag bits would
			// journal bytes that differ from the canonical encoding of the
			// record they decode to; reject so WAL contents stay identical
			// across wire formats.
			res.rejected++
			s.ingestRejected.With("invalid_record").Inc()
			if len(st.errs) < 10 {
				st.errs = append(st.errs, batchError{
					Index: i, Error: "serve: malformed record payload"})
			}
			continue
		}
		id, model, rec, derr := decodeWALRecordBinary(payload)
		if derr == nil {
			derr = validateDayRecord(&rec)
		}
		if derr != nil {
			res.rejected++
			s.ingestRejected.With("invalid_record").Inc()
			if len(st.errs) < 10 {
				st.errs = append(st.errs, batchError{
					Index: i, DriveID: binary.LittleEndian.Uint32(payload), Error: derr.Error()})
			}
			continue
		}
		var uerr error
		if s.journal != nil {
			uerr = s.journal.UpsertPayload(id, model, rec, payload)
		} else {
			uerr = s.store.Upsert(id, model, rec)
		}
		if uerr != nil {
			if errors.Is(uerr, ErrJournal) {
				// The WAL is failing; every further append would too.
				s.ingestRejected.With("wal_error").Inc()
				res.code = http.StatusServiceUnavailable
				res.topErr = uerr.Error()
				res.dropped = count - i
				return res
			}
			res.rejected++
			s.ingestRejected.With("store_conflict").Inc()
			if len(st.errs) < 10 {
				st.errs = append(st.errs, batchError{Index: i, DriveID: id, Error: uerr.Error()})
			}
			continue
		}
		s.ingested.Inc()
		res.accepted++
	}
	if len(rest) != 0 {
		// Unreachable given the fixed-stride length check, but a format
		// change that forgot it must not silently ignore bytes.
		res.code = http.StatusBadRequest
		res.topErr = "trailing bytes after last frame"
		return res
	}
	if res.accepted == 0 && count > 0 && res.code == http.StatusAccepted {
		res.code = http.StatusUnprocessableEntity
	}
	return res
}

// renderBinReply builds the JSON response into st.resp without an
// encoder: the shapes mirror handleIngestBatch's writeJSON maps, but a
// steady-state 202 must not allocate.
func (st *binState) renderBinReply(res binResult) {
	buf := st.resp[:0]
	buf = append(buf, '{')
	if res.topErr != "" {
		buf = append(buf, `"error":`...)
		buf = appendJSONString(buf, res.topErr)
		buf = append(buf, ',')
	}
	buf = append(buf, `"accepted":`...)
	buf = strconv.AppendInt(buf, int64(res.accepted), 10)
	buf = append(buf, `,"rejected":`...)
	buf = strconv.AppendInt(buf, int64(res.rejected), 10)
	if res.topErr != "" {
		buf = append(buf, `,"dropped":`...)
		buf = strconv.AppendInt(buf, int64(res.dropped), 10)
	}
	buf = append(buf, `,"errors":`...)
	if len(st.errs) == 0 {
		buf = append(buf, `null`...)
	} else {
		buf = append(buf, '[')
		for i := range st.errs {
			if i > 0 {
				buf = append(buf, ',')
			}
			e := &st.errs[i]
			buf = append(buf, `{"index":`...)
			buf = strconv.AppendInt(buf, int64(e.Index), 10)
			buf = append(buf, `,"drive_id":`...)
			buf = strconv.AppendUint(buf, uint64(e.DriveID), 10)
			buf = append(buf, `,"error":`...)
			buf = appendJSONString(buf, e.Error)
			buf = append(buf, '}')
		}
		buf = append(buf, ']')
	}
	buf = append(buf, '}', '\n')
	st.resp = buf
}

// appendJSONString appends s as a JSON string literal. Unlike
// strconv.AppendQuote (Go escaping, not JSON) it emits only escapes
// JSON accepts.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			buf = append(buf, '\\', c)
		case c >= 0x20:
			buf = append(buf, c)
		default:
			const hex = "0123456789abcdef"
			buf = append(buf, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xF])
		}
	}
	return append(buf, '"')
}

// binStatePool builds the server's binState pool.
func binStatePool() sync.Pool {
	return sync.Pool{New: func() any {
		return &binState{errs: make([]batchError, 0, 10)}
	}}
}
