package serve

// Node-mode hooks for clustered deployments: a readiness-aware health
// endpoint, a follower catch-up endpoint that streams the node's WAL
// over HTTP in the log's own frame format, and the apply path a
// replication puller feeds. The router tier (internal/cluster) builds
// on exactly these three surfaces; a standalone daemon exposes them
// too, they just have no callers.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"net/http"
	"strconv"

	"ssdfail/internal/trace"
	"ssdfail/internal/wal"
)

// Stream frames are the WAL wire format prefixed with the explicit
// LSN: lsn u64 | len u32 | crc32c u32 | payload, little-endian, so a
// puller can verify every frame checksum and LSN continuity itself
// before trusting a byte of it.
const (
	// StreamFrameHeader is the per-frame header size on the catch-up wire.
	StreamFrameHeader = 16
	// DefaultStreamBytes caps one catch-up response body.
	DefaultStreamBytes = 1 << 20
	maxStreamBytes     = 8 << 20
)

var streamCRC = crc32.MakeTable(crc32.Castagnoli)

// errStreamFull ends a stream pass once the response budget is spent.
var errStreamFull = errors.New("serve: stream response budget reached")

// DecodeWALRecord decodes one WAL frame payload into the record it
// carries — the follower side of the replication wire, matching what
// Journal.Upsert appends.
func DecodeWALRecord(payload []byte) (uint32, trace.Model, trace.DayRecord, error) {
	return decodeWALRecordBinary(payload)
}

// AppendStreamFrame appends one catch-up wire frame to buf.
func AppendStreamFrame(buf []byte, lsn uint64, payload []byte) []byte {
	var hdr [StreamFrameHeader]byte
	binary.LittleEndian.PutUint64(hdr[0:8], lsn)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.Checksum(payload, streamCRC))
	return append(append(buf, hdr[:]...), payload...)
}

// ParseStreamFrame parses the frame at the start of data, returning
// the total frame size, its LSN, and its payload. A short, zero-length,
// or checksum-mismatching frame returns (0, 0, nil) — the puller stops
// and re-polls rather than applying a damaged record.
func ParseStreamFrame(data []byte) (int, uint64, []byte) {
	if len(data) < StreamFrameHeader {
		return 0, 0, nil
	}
	lsn := binary.LittleEndian.Uint64(data[0:8])
	length := binary.LittleEndian.Uint32(data[8:12])
	if length == 0 {
		return 0, 0, nil
	}
	end := StreamFrameHeader + int(length)
	if end > len(data) {
		return 0, 0, nil
	}
	payload := data[StreamFrameHeader:end]
	if crc32.Checksum(payload, streamCRC) != binary.LittleEndian.Uint32(data[12:16]) {
		return 0, 0, nil
	}
	return end, lsn, payload
}

// ApplyReplicated applies one record pulled from a primary's WAL
// stream. It takes the node's normal durable path (journaled when a
// WAL is configured), so a promoted follower has its own recoverable
// log. The bool reports whether the record was newly applied: store
// conflicts — the record or a newer day already present, the benign
// overlap of re-pulls after a restart — are skipped, not errors. An
// error wrapping ErrJournal means the record could not be made durable
// and the puller must not advance past it.
func (s *Server) ApplyReplicated(id uint32, model trace.Model, rec trace.DayRecord) (bool, error) {
	var err error
	if s.journal != nil {
		err = s.journal.Upsert(id, model, rec)
	} else {
		err = s.store.Upsert(id, model, rec)
	}
	switch {
	case err == nil:
		s.replicaApplied.Inc()
		return true, nil
	case errors.Is(err, ErrJournal):
		return false, err
	default:
		s.replicaSkipped.Inc()
		return false, nil
	}
}

// handleHealth is the cluster readiness probe. By the time this
// handler exists the server has finished WAL replay (New is
// synchronous), so it always reports ready; during recovery the
// listener answers through a cluster gate that reports "starting"
// instead, and routers only trust a 200 with status ready.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	_, info, ok := s.registry.Current()
	resp := map[string]any{
		"status":       "ready",
		"drives":       s.store.Len(),
		"model_loaded": ok,
	}
	if s.cfg.NodeName != "" {
		resp["node"] = s.cfg.NodeName
	}
	if ok {
		resp["model_version"] = info.Version
	}
	if s.journal != nil {
		resp["wal_last_lsn"] = s.journal.LastLSN()
		resp["replica_applied"] = s.replicaApplied.Value()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleWALStream serves the follower catch-up wire: intact WAL frames
// with LSN >= from, re-framed with explicit LSNs, up to max_bytes per
// response. The journal's in-process buffer is flushed first so every
// acknowledged record is eligible immediately; an empty 200 body means
// the follower is caught up. 410 Gone means the position was pruned by
// a snapshot and the follower cannot catch up from the log alone.
func (s *Server) handleWALStream(w http.ResponseWriter, r *http.Request) {
	if s.journal == nil {
		writeError(w, http.StatusConflict, "durability disabled: daemon runs without a WAL")
		return
	}
	from := uint64(0)
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad from: "+err.Error())
			return
		}
		from = n
	}
	maxBytes, err := queryInt(r, "max_bytes", DefaultStreamBytes)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if maxBytes <= 0 || maxBytes > maxStreamBytes {
		maxBytes = maxStreamBytes
	}
	var buf bytes.Buffer
	_, err = s.journal.StreamFrom(from, func(lsn uint64, payload []byte) error {
		b := AppendStreamFrame(nil, lsn, payload)
		buf.Write(b) //ssdlint:allow droppederr bytes.Buffer.Write cannot fail (it panics on OOM); the frame stays in memory until the response write below
		if buf.Len() >= maxBytes {
			return errStreamFull
		}
		return nil
	})
	if err != nil && !errors.Is(err, errStreamFull) {
		if errors.Is(err, wal.ErrPruned) {
			writeError(w, http.StatusGone, err.Error())
			return
		}
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.walStreamed.Add(uint64(buf.Len()))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	//ssdlint:allow droppederr catch-up response write failed means the follower hung up; it re-polls from its own cursor
	w.Write(buf.Bytes())
}
