package serve

import (
	"fmt"
	"math"

	"ssdfail/internal/trace"
)

// IngestRecord is the JSON wire form of one drive-day report, mirroring
// the trace.DayRecord schema (§2 of the paper). Error counters are
// keyed by the snake_case kind names used throughout the repo
// ("correctable", "uncorrectable", "final_read", ...); absent kinds
// default to zero.
type IngestRecord struct {
	DriveID uint32 `json:"drive_id"`
	Model   string `json:"model"`
	Day     int32  `json:"day"`
	Age     int32  `json:"age"`

	Reads  uint64 `json:"reads"`
	Writes uint64 `json:"writes"`
	Erases uint64 `json:"erases"`

	CumReads  uint64 `json:"cum_reads"`
	CumWrites uint64 `json:"cum_writes"`
	CumErases uint64 `json:"cum_erases"`

	PECycles float64 `json:"pe_cycles"`

	FactoryBadBlocks uint32 `json:"factory_bad_blocks"`
	GrownBadBlocks   uint32 `json:"grown_bad_blocks"`

	Errors    map[string]uint32 `json:"errors,omitempty"`
	CumErrors map[string]uint64 `json:"cum_errors,omitempty"`

	Dead     bool `json:"dead"`
	ReadOnly bool `json:"read_only"`
}

// ToRecord validates the wire record and converts it to the internal
// schema. It enforces the same per-record invariants as trace.Validate:
// non-negative day and age, known model and error-kind names, finite
// non-negative P/E cycles, and daily error counts that do not exceed
// their cumulative counterparts.
func (ir *IngestRecord) ToRecord() (trace.Model, trace.DayRecord, error) {
	model, err := trace.ParseModel(ir.Model)
	if err != nil {
		return 0, trace.DayRecord{}, err
	}
	if ir.Day < 0 {
		return 0, trace.DayRecord{}, fmt.Errorf("serve: negative day %d", ir.Day)
	}
	if ir.Age < 0 {
		return 0, trace.DayRecord{}, fmt.Errorf("serve: negative age %d", ir.Age)
	}
	if math.IsNaN(ir.PECycles) || math.IsInf(ir.PECycles, 0) || ir.PECycles < 0 {
		return 0, trace.DayRecord{}, fmt.Errorf("serve: invalid pe_cycles %v", ir.PECycles)
	}
	rec := trace.DayRecord{
		Day: ir.Day, Age: ir.Age,
		Reads: ir.Reads, Writes: ir.Writes, Erases: ir.Erases,
		CumReads: ir.CumReads, CumWrites: ir.CumWrites, CumErases: ir.CumErases,
		PECycles:         ir.PECycles,
		FactoryBadBlocks: ir.FactoryBadBlocks,
		GrownBadBlocks:   ir.GrownBadBlocks,
		Dead:             ir.Dead, ReadOnly: ir.ReadOnly,
	}
	for name, v := range ir.Errors {
		k, err := trace.ParseErrorKind(name)
		if err != nil {
			return 0, trace.DayRecord{}, err
		}
		rec.Errors[k] = v
	}
	for name, v := range ir.CumErrors {
		k, err := trace.ParseErrorKind(name)
		if err != nil {
			return 0, trace.DayRecord{}, err
		}
		rec.CumErrors[k] = v
	}
	for k := 0; k < trace.NumErrorKinds; k++ {
		if uint64(rec.Errors[k]) > rec.CumErrors[k] {
			return 0, trace.DayRecord{}, fmt.Errorf(
				"serve: daily %s count %d exceeds cumulative %d",
				trace.ErrorKind(k), rec.Errors[k], rec.CumErrors[k])
		}
	}
	return model, rec, nil
}

// WireRecord converts an internal record back to the wire form, used by
// the drive-inspection endpoint and by tests and clients building
// ingest payloads from trace data. Zero-valued error counters are
// omitted to keep payloads small.
func WireRecord(id uint32, model trace.Model, rec *trace.DayRecord) IngestRecord {
	ir := IngestRecord{
		DriveID: id, Model: model.String(),
		Day: rec.Day, Age: rec.Age,
		Reads: rec.Reads, Writes: rec.Writes, Erases: rec.Erases,
		CumReads: rec.CumReads, CumWrites: rec.CumWrites, CumErases: rec.CumErases,
		PECycles:         rec.PECycles,
		FactoryBadBlocks: rec.FactoryBadBlocks,
		GrownBadBlocks:   rec.GrownBadBlocks,
		Dead:             rec.Dead, ReadOnly: rec.ReadOnly,
	}
	for k := 0; k < trace.NumErrorKinds; k++ {
		if rec.Errors[k] != 0 {
			if ir.Errors == nil {
				ir.Errors = make(map[string]uint32)
			}
			ir.Errors[trace.ErrorKind(k).String()] = rec.Errors[k]
		}
		if rec.CumErrors[k] != 0 {
			if ir.CumErrors == nil {
				ir.CumErrors = make(map[string]uint64)
			}
			ir.CumErrors[trace.ErrorKind(k).String()] = rec.CumErrors[k]
		}
	}
	return ir
}
