package serve

import (
	"encoding/binary"
	"fmt"
	"math"

	"ssdfail/internal/trace"
)

// IngestRecord is the JSON wire form of one drive-day report, mirroring
// the trace.DayRecord schema (§2 of the paper). Error counters are
// keyed by the snake_case kind names used throughout the repo
// ("correctable", "uncorrectable", "final_read", ...); absent kinds
// default to zero.
type IngestRecord struct {
	DriveID uint32 `json:"drive_id"`
	Model   string `json:"model"`
	Day     int32  `json:"day"`
	Age     int32  `json:"age"`

	Reads  uint64 `json:"reads"`
	Writes uint64 `json:"writes"`
	Erases uint64 `json:"erases"`

	CumReads  uint64 `json:"cum_reads"`
	CumWrites uint64 `json:"cum_writes"`
	CumErases uint64 `json:"cum_erases"`

	PECycles float64 `json:"pe_cycles"`

	FactoryBadBlocks uint32 `json:"factory_bad_blocks"`
	GrownBadBlocks   uint32 `json:"grown_bad_blocks"`

	Errors    map[string]uint32 `json:"errors,omitempty"`
	CumErrors map[string]uint64 `json:"cum_errors,omitempty"`

	Dead     bool `json:"dead"`
	ReadOnly bool `json:"read_only"`
}

// ToRecord validates the wire record and converts it to the internal
// schema. It enforces the same per-record invariants as trace.Validate:
// non-negative day and age, known model and error-kind names, finite
// non-negative P/E cycles, and daily error counts that do not exceed
// their cumulative counterparts.
func (ir *IngestRecord) ToRecord() (trace.Model, trace.DayRecord, error) {
	model, err := trace.ParseModel(ir.Model)
	if err != nil {
		return 0, trace.DayRecord{}, err
	}
	rec := trace.DayRecord{
		Day: ir.Day, Age: ir.Age,
		Reads: ir.Reads, Writes: ir.Writes, Erases: ir.Erases,
		CumReads: ir.CumReads, CumWrites: ir.CumWrites, CumErases: ir.CumErases,
		PECycles:         ir.PECycles,
		FactoryBadBlocks: ir.FactoryBadBlocks,
		GrownBadBlocks:   ir.GrownBadBlocks,
		Dead:             ir.Dead, ReadOnly: ir.ReadOnly,
	}
	for name, v := range ir.Errors {
		k, err := trace.ParseErrorKind(name)
		if err != nil {
			return 0, trace.DayRecord{}, err
		}
		rec.Errors[k] = v
	}
	for name, v := range ir.CumErrors {
		k, err := trace.ParseErrorKind(name)
		if err != nil {
			return 0, trace.DayRecord{}, err
		}
		rec.CumErrors[k] = v
	}
	if err := validateDayRecord(&rec); err != nil {
		return 0, trace.DayRecord{}, err
	}
	return model, rec, nil
}

// validateDayRecord enforces the per-record invariants shared by the
// JSON and binary ingest paths: non-negative day and age, finite
// non-negative P/E cycles, and daily error counts that do not exceed
// their cumulative counterparts. It never allocates on success.
func validateDayRecord(rec *trace.DayRecord) error {
	if rec.Day < 0 {
		return fmt.Errorf("serve: negative day %d", rec.Day)
	}
	if rec.Age < 0 {
		return fmt.Errorf("serve: negative age %d", rec.Age)
	}
	if math.IsNaN(rec.PECycles) || math.IsInf(rec.PECycles, 0) || rec.PECycles < 0 {
		return fmt.Errorf("serve: invalid pe_cycles %v", rec.PECycles)
	}
	for k := 0; k < trace.NumErrorKinds; k++ {
		if uint64(rec.Errors[k]) > rec.CumErrors[k] {
			return fmt.Errorf(
				"serve: daily %s count %d exceeds cumulative %d",
				trace.ErrorKind(k), rec.Errors[k], rec.CumErrors[k])
		}
	}
	return nil
}

// Binary record codec for the WAL and snapshots. One day record is a
// fixed-width little-endian block (day/age, op counters, P/E cycles,
// bad blocks, error arrays, flags); a WAL payload prefixes it with the
// drive ID and model. The fixed width keeps replay allocation-free and
// makes torn frames detectable by length alone.

const (
	dayRecordBinarySize = 4 + 4 + 6*8 + 8 + 4 + 4 + trace.NumErrorKinds*4 + trace.NumErrorKinds*8 + 1
	walRecordBinarySize = 4 + 1 + dayRecordBinarySize
)

// appendDayRecordBinary appends the fixed-width encoding of rec.
func appendDayRecordBinary(buf []byte, rec *trace.DayRecord) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.Day))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.Age))
	for _, v := range [6]uint64{rec.Reads, rec.Writes, rec.Erases, rec.CumReads, rec.CumWrites, rec.CumErases} {
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(rec.PECycles))
	buf = binary.LittleEndian.AppendUint32(buf, rec.FactoryBadBlocks)
	buf = binary.LittleEndian.AppendUint32(buf, rec.GrownBadBlocks)
	for k := 0; k < trace.NumErrorKinds; k++ {
		buf = binary.LittleEndian.AppendUint32(buf, rec.Errors[k])
	}
	for k := 0; k < trace.NumErrorKinds; k++ {
		buf = binary.LittleEndian.AppendUint64(buf, rec.CumErrors[k])
	}
	var flags byte
	if rec.Dead {
		flags |= 1
	}
	if rec.ReadOnly {
		flags |= 2
	}
	return append(buf, flags)
}

// decodeDayRecordBinary decodes one fixed-width record from the front
// of b, returning the remainder.
func decodeDayRecordBinary(b []byte) (trace.DayRecord, []byte, error) {
	var rec trace.DayRecord
	if len(b) < dayRecordBinarySize {
		return rec, b, fmt.Errorf("serve: day record truncated: %d of %d bytes", len(b), dayRecordBinarySize)
	}
	rec.Day = int32(binary.LittleEndian.Uint32(b[0:]))
	rec.Age = int32(binary.LittleEndian.Uint32(b[4:]))
	rec.Reads = binary.LittleEndian.Uint64(b[8:])
	rec.Writes = binary.LittleEndian.Uint64(b[16:])
	rec.Erases = binary.LittleEndian.Uint64(b[24:])
	rec.CumReads = binary.LittleEndian.Uint64(b[32:])
	rec.CumWrites = binary.LittleEndian.Uint64(b[40:])
	rec.CumErases = binary.LittleEndian.Uint64(b[48:])
	rec.PECycles = math.Float64frombits(binary.LittleEndian.Uint64(b[56:]))
	rec.FactoryBadBlocks = binary.LittleEndian.Uint32(b[64:])
	rec.GrownBadBlocks = binary.LittleEndian.Uint32(b[68:])
	off := 72
	for k := 0; k < trace.NumErrorKinds; k++ {
		rec.Errors[k] = binary.LittleEndian.Uint32(b[off:])
		off += 4
	}
	for k := 0; k < trace.NumErrorKinds; k++ {
		rec.CumErrors[k] = binary.LittleEndian.Uint64(b[off:])
		off += 8
	}
	flags := b[off]
	rec.Dead = flags&1 != 0
	rec.ReadOnly = flags&2 != 0
	return rec, b[off+1:], nil
}

// appendWALRecordBinary appends the WAL payload for one accepted
// ingest: drive ID, model, day record.
func appendWALRecordBinary(buf []byte, id uint32, model trace.Model, rec *trace.DayRecord) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, id)
	buf = append(buf, byte(model))
	return appendDayRecordBinary(buf, rec)
}

// decodeWALRecordBinary decodes a payload written by
// appendWALRecordBinary.
func decodeWALRecordBinary(b []byte) (uint32, trace.Model, trace.DayRecord, error) {
	if len(b) != walRecordBinarySize {
		return 0, 0, trace.DayRecord{}, fmt.Errorf("serve: WAL record is %d bytes, want %d", len(b), walRecordBinarySize)
	}
	id := binary.LittleEndian.Uint32(b)
	model := trace.Model(b[4])
	if int(model) >= trace.NumModels {
		return 0, 0, trace.DayRecord{}, fmt.Errorf("serve: WAL record has unknown model %d", b[4])
	}
	rec, _, err := decodeDayRecordBinary(b[5:])
	return id, model, rec, err
}

// WireRecord converts an internal record back to the wire form, used by
// the drive-inspection endpoint and by tests and clients building
// ingest payloads from trace data. Zero-valued error counters are
// omitted to keep payloads small.
func WireRecord(id uint32, model trace.Model, rec *trace.DayRecord) IngestRecord {
	ir := IngestRecord{
		DriveID: id, Model: model.String(),
		Day: rec.Day, Age: rec.Age,
		Reads: rec.Reads, Writes: rec.Writes, Erases: rec.Erases,
		CumReads: rec.CumReads, CumWrites: rec.CumWrites, CumErases: rec.CumErases,
		PECycles:         rec.PECycles,
		FactoryBadBlocks: rec.FactoryBadBlocks,
		GrownBadBlocks:   rec.GrownBadBlocks,
		Dead:             rec.Dead, ReadOnly: rec.ReadOnly,
	}
	for k := 0; k < trace.NumErrorKinds; k++ {
		if rec.Errors[k] != 0 {
			if ir.Errors == nil {
				ir.Errors = make(map[string]uint32)
			}
			ir.Errors[trace.ErrorKind(k).String()] = rec.Errors[k]
		}
		if rec.CumErrors[k] != 0 {
			if ir.CumErrors == nil {
				ir.CumErrors = make(map[string]uint64)
			}
			ir.CumErrors[trace.ErrorKind(k).String()] = rec.CumErrors[k]
		}
	}
	return ir
}
