package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"ssdfail/internal/remedy"
)

// getJSONBody unmarshals a response body already read by postJSON.
func getJSONBody(t *testing.T, body []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, body)
	}
}

// getText fetches a plain-text endpoint (the metrics scrape).
func getText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func itoa(n int) string { return strconv.Itoa(n) }

// remedyConfig enables the control plane with a hair-trigger policy so
// a single evaluation pass produces decisions against the fixture
// fleet's real scores.
func remedyConfig(spares int) func(*Config) {
	return func(c *Config) {
		p := remedy.DefaultPolicy()
		p.Threshold = 0.5
		p.CordonAfter = 1
		p.MaxDrainFraction = 1
		p.DrainTicks = 0
		c.RemedyPolicy = &p
		c.RemedySpares = spares
	}
}

func TestRemedyEndpointsDisabledWithoutPolicy(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for _, req := range []struct{ method, path string }{
		{http.MethodPost, "/v1/remedy/evaluate"},
		{http.MethodGet, "/v1/remedy/status"},
		{http.MethodGet, "/v1/remedy/drives"},
		{http.MethodGet, "/v1/remedy/log"},
		{http.MethodPost, "/v1/remedy/fail"},
	} {
		var resp *http.Response
		if req.method == http.MethodGet {
			resp = getJSON(t, ts.URL+req.path, nil)
		} else {
			resp, _ = postJSON(t, ts.URL+req.path, map[string]any{})
		}
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("%s %s status = %d, want 409", req.method, req.path, resp.StatusCode)
		}
	}
}

func TestRemedyEvaluateCordonsSwapsAndAccounts(t *testing.T) {
	_, ts := newTestServer(t, remedyConfig(1000))

	// Ingest two fleet days so every drive has a scoreable history.
	for _, off := range []int{1, 0} {
		if resp, body := postJSON(t, ts.URL+"/v1/ingest/batch", fleetDay(off)); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("ingest status %d: %s", resp.StatusCode, body)
		}
	}

	var eval struct {
		Tick      uint64 `json:"tick"`
		FleetSize int    `json:"fleet_size"`
		Decisions []struct {
			Tick   uint64  `json:"tick"`
			Action string  `json:"action"`
			Drive  uint32  `json:"drive_id"`
			Score  float64 `json:"score"`
			Spare  int     `json:"spare"`
		} `json:"decisions"`
	}
	resp, body := postJSON(t, ts.URL+"/v1/remedy/evaluate", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate status %d: %s", resp.StatusCode, body)
	}
	getJSONBody(t, body, &eval)
	if eval.Tick != 1 || eval.FleetSize == 0 {
		t.Fatalf("evaluate = %+v", eval)
	}
	// With threshold 0.5, cordon_after 1, drain_ticks 0 and a deep
	// pool, every decision chain lands in one tick: cordon,
	// drain_start, swap triplets for each hot drive.
	if len(eval.Decisions) == 0 || len(eval.Decisions)%3 != 0 {
		t.Fatalf("decisions = %d, want a non-zero multiple of 3", len(eval.Decisions))
	}
	swapped := map[uint32]bool{}
	for _, d := range eval.Decisions {
		if d.Score < 0.5 {
			t.Fatalf("decision on sub-threshold drive: %+v", d)
		}
		if d.Action == "swap" {
			swapped[d.Drive] = true
		}
	}
	if len(swapped) != len(eval.Decisions)/3 {
		t.Fatalf("swaps = %d, decisions = %d", len(swapped), len(eval.Decisions))
	}

	// Status reflects the tick's work and the pool draw-down.
	var status struct {
		Tick   uint64         `json:"tick"`
		States map[string]int `json:"states"`
		Stats  struct {
			Swaps uint64 `json:"Swaps"`
		} `json:"stats"`
		Pool struct {
			InUse int `json:"InUse"`
		} `json:"pool"`
	}
	if resp := getJSON(t, ts.URL+"/v1/remedy/status", &status); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if status.Tick != 1 || int(status.Stats.Swaps) != len(swapped) || status.Pool.InUse != len(swapped) {
		t.Fatalf("status = %+v, want %d swaps", status, len(swapped))
	}
	if status.States["swapped"] != len(swapped) {
		t.Fatalf("states = %v", status.States)
	}

	// Drives view agrees and is sorted.
	var drives struct {
		Count  int `json:"count"`
		Drives []struct {
			DriveID uint32 `json:"drive_id"`
			State   string `json:"state"`
			Spare   int    `json:"spare"`
		} `json:"drives"`
	}
	if resp := getJSON(t, ts.URL+"/v1/remedy/drives", &drives); resp.StatusCode != http.StatusOK {
		t.Fatalf("drives %d", resp.StatusCode)
	}
	if drives.Count != eval.FleetSize {
		t.Fatalf("drives count = %d, want %d", drives.Count, eval.FleetSize)
	}
	gotSwapped := 0
	for i, d := range drives.Drives {
		if i > 0 && drives.Drives[i-1].DriveID >= d.DriveID {
			t.Fatal("drives not sorted by ID")
		}
		if d.State == "swapped" {
			gotSwapped++
			if d.Spare == 0 {
				t.Fatalf("swapped drive %d has no spare", d.DriveID)
			}
		}
	}
	if gotSwapped != len(swapped) {
		t.Fatalf("drives view shows %d swapped, want %d", gotSwapped, len(swapped))
	}

	// The log replays the decisions; ?n= bounds the slice.
	var logResp struct {
		Total  uint64 `json:"total"`
		Count  int    `json:"count"`
		Events []struct {
			Action string `json:"action"`
		} `json:"events"`
	}
	if resp := getJSON(t, ts.URL+"/v1/remedy/log?n=2", &logResp); resp.StatusCode != http.StatusOK {
		t.Fatalf("log %d", resp.StatusCode)
	}
	if logResp.Total != uint64(len(eval.Decisions)) || logResp.Count != 2 {
		t.Fatalf("log = %+v, want total %d count 2", logResp, len(eval.Decisions))
	}
	if resp := getJSON(t, ts.URL+"/v1/remedy/log?n=-1", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative n status %d, want 400", resp.StatusCode)
	}

	// A swapped drive's ground-truth failure is a prevented loss; an
	// unknown drive is rejected.
	var anySwapped uint32
	for id := range swapped {
		anySwapped = id
		break
	}
	var failResp struct {
		Event struct {
			Action string  `json:"action"`
			Cost   float64 `json:"cost"`
		} `json:"event"`
	}
	resp, body = postJSON(t, ts.URL+"/v1/remedy/fail", map[string]any{"drive_id": anySwapped})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fail status %d: %s", resp.StatusCode, body)
	}
	getJSONBody(t, body, &failResp)
	if failResp.Event.Action != "fail" || failResp.Event.Cost != 0 {
		t.Fatalf("fail event = %+v, want zero-cost prevented loss", failResp.Event)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/remedy/fail", map[string]any{"drive_id": 4_000_000}); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unknown-drive fail status %d, want 422", resp.StatusCode)
	}

	// Metrics expose the ssdremedy series with the tick's numbers.
	metrics := getText(t, ts.URL+"/metrics")
	for _, want := range []string{
		"ssdremedy_evaluations_total 1",
		"ssdremedy_prevented_losses_total 1",
		"ssdremedy_spares_in_use " + itoa(len(swapped)),
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
}

func TestRemedyEvaluateWithoutIngestIsEmptyTick(t *testing.T) {
	_, ts := newTestServer(t, remedyConfig(10))
	var eval struct {
		Tick      uint64 `json:"tick"`
		FleetSize int    `json:"fleet_size"`
		Decisions []any  `json:"decisions"`
	}
	resp, body := postJSON(t, ts.URL+"/v1/remedy/evaluate", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate status %d: %s", resp.StatusCode, body)
	}
	getJSONBody(t, body, &eval)
	if eval.Tick != 1 || eval.FleetSize != 0 || len(eval.Decisions) != 0 {
		t.Fatalf("empty-fleet evaluate = %+v", eval)
	}
}
