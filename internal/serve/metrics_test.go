package serve

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestMetricsRendering(t *testing.T) {
	m := NewMetrics()
	c := m.NewCounter("test_ops_total", "Operations.")
	c.Add(3)
	g := m.NewGauge("test_level", "Level.")
	g.Set(2.5)
	m.NewGaugeFunc("test_func", "Computed.", func() float64 { return 7 })
	cv := m.NewCounterVec("test_reqs_total", "Requests.", "handler", "code")
	cv.With("ingest", "200").Add(2)
	cv.With("ingest", "400").Inc()

	var sb strings.Builder
	if _, err := m.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP test_ops_total Operations.",
		"# TYPE test_ops_total counter",
		"test_ops_total 3",
		"# TYPE test_level gauge",
		"test_level 2.5",
		"test_func 7",
		`test_reqs_total{handler="ingest",code="200"} 2`,
		`test_reqs_total{handler="ingest",code="400"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	m := NewMetrics()
	h := m.NewHistogram("test_latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Fatalf("sum = %v, want 56.05", h.Sum())
	}
	var sb strings.Builder
	if _, err := m.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{le="0.1"} 1`,
		`test_latency_seconds_bucket{le="1"} 3`,
		`test_latency_seconds_bucket{le="10"} 4`,
		`test_latency_seconds_bucket{le="+Inf"} 5`,
		"test_latency_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// A value exactly on a bound lands in that bound's bucket
	// (cumulative le semantics).
	h2 := newHistogram([]float64{1, 2})
	h2.Observe(1)
	if got := h2.counts[0].Load(); got != 1 {
		t.Fatalf("boundary observation fell in bucket %v", h2.counts)
	}
}

// TestMetricsSnapshotMatchesExposition checks that Snapshot and the text
// exposition are two views of the same samples: every series in the
// scrape appears in the snapshot with the same value, and vice versa.
func TestMetricsSnapshotMatchesExposition(t *testing.T) {
	m := NewMetrics()
	m.NewCounter("snap_ops_total", "Ops.").Add(41)
	m.NewGauge("snap_level", "Level.").Set(2.25)
	m.NewGaugeFunc("snap_func", "Computed.", func() float64 { return 1e6 })
	cv := m.NewCounterVec("snap_reqs_total", "Reqs.", "handler")
	cv.With("ingest").Add(7)
	h := m.NewHistogram("snap_lat_seconds", "Lat.", []float64{0.5, 5})
	h.Observe(0.1)
	h.Observe(1)

	var sb strings.Builder
	if _, err := m.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	exposed := map[string]float64{}
	for _, line := range strings.Split(sb.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("unparseable exposition line %q: %v", line, err)
		}
		exposed[line[:sp]] = v
	}
	snap := m.Snapshot()
	if len(snap) != len(exposed) {
		t.Fatalf("snapshot has %d series, exposition %d", len(snap), len(exposed))
	}
	for name, v := range exposed {
		if sv, ok := snap[name]; !ok || sv != v {
			t.Errorf("series %s: snapshot %v, exposition %v (present %v)", name, sv, v, ok)
		}
	}
	if snap["snap_ops_total"] != 41 || snap[`snap_reqs_total{handler="ingest"}`] != 7 {
		t.Errorf("unexpected counter values in %v", snap)
	}
	if snap[`snap_lat_seconds_bucket{le="0.5"}`] != 1 || snap["snap_lat_seconds_count"] != 2 {
		t.Errorf("unexpected histogram samples in %v", snap)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram(DurationBuckets)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	if math.Abs(h.Sum()-8.0) > 1e-6 {
		t.Fatalf("sum = %v, want 8.0", h.Sum())
	}
}
