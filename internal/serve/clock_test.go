package serve

import (
	"sync"
	"testing"
	"time"
)

// stepClock is a deterministic time source: every reading advances the
// clock by a fixed step, so "how long did this take" becomes "how many
// times was the clock read" — exact, not merely plausible.
type stepClock struct {
	mu   sync.Mutex
	at   time.Time
	step time.Duration
}

func newStepClock(step time.Duration) *stepClock {
	return &stepClock{at: time.Unix(1_700_000_000, 0), step: step}
}

func (c *stepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.at = c.at.Add(c.step)
	return c.at
}

// TestClockInjectionMakesLatencyMetricsDeterministic drives one request
// through a server running on a stepping clock and asserts the recorded
// request duration is the exact number of clock steps between the
// instrument's begin and end readings — proving the whole latency path
// uses the injected clock, not the wall.
func TestClockInjectionMakesLatencyMetricsDeterministic(t *testing.T) {
	clock := newStepClock(time.Second)
	s, ts := newTestServer(t, func(c *Config) { c.Clock = clock.Now })

	resp := getJSON(t, ts.URL+"/healthz", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	snap := s.CounterSnapshot()
	// Reads per request: instrument begin, healthz uptime, instrument
	// end — so the observed duration is exactly 2 steps.
	if got := snap["ssdserved_http_request_duration_seconds_sum"]; got != 2 {
		t.Errorf("request duration sum = %v, want exactly 2 (clock steps)", got)
	}
	if got := snap["ssdserved_http_request_duration_seconds_count"]; got != 1 {
		t.Errorf("request duration count = %v, want 1", got)
	}
	if got := snap[`ssdserved_http_requests_total{handler="healthz",code="200"}`]; got != 1 {
		t.Errorf("healthz requests counter = %v, want 1", got)
	}
}
