package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"sync"
	"time"

	"ssdfail/internal/faultfs"
	"ssdfail/internal/remedy"
	"ssdfail/internal/trace"
)

// Config configures a Server.
type Config struct {
	// ModelPath is the predictor file (core.Predictor.Save format) the
	// registry loads at startup and on POST /v1/model/reload.
	ModelPath string
	// Shards and History size the drive-state store; zero values use
	// the store defaults.
	Shards  int
	History int
	// Workers is the batch-scoring worker count (0 = all CPUs).
	Workers int
	// MaxBodyBytes caps ingest request bodies; 0 means 8 MiB.
	MaxBodyBytes int64
	// WatchlistThreshold is the default minimum score for /v1/watchlist.
	// The default 0.9 is the paper's recommended low-false-positive-rate
	// operating point (Figure 15): act on few drives, almost all of
	// which really are about to fail.
	WatchlistThreshold float64
	// WatchlistK is the default maximum watchlist length (0 means 50).
	WatchlistK int

	// WALDir enables the durability layer: accepted ingest records are
	// written to a write-ahead log there, periodic snapshots bound
	// replay time, and boot recovers snapshot+tail. Empty disables
	// durability (in-memory only, as before).
	WALDir string
	// WALSegmentBytes, WALSyncEvery, WALSyncInterval, and SnapshotEvery
	// tune the journal; zero values use the wal/journal defaults.
	WALSegmentBytes int64
	WALSyncEvery    int
	WALSyncInterval time.Duration
	SnapshotEvery   int
	// WALFS overrides the journal's filesystem (fault-injection tests).
	WALFS faultfs.FS
	// SyncSnapshots makes automatic snapshots run inline on the ingest
	// path instead of a background goroutine (deterministic tests).
	SyncSnapshots bool

	// MaxInflightIngest bounds concurrently served ingest requests;
	// excess requests are shed with 429 + Retry-After instead of piling
	// onto a WAL or store that has fallen behind. 0 means 256.
	MaxInflightIngest int
	// MaxInflightScores bounds concurrent full-fleet scoring passes
	// (the watchlist endpoint); excess requests are shed with 429.
	// 0 means 4.
	MaxInflightScores int
	// RequestTimeout is the per-request deadline; handlers abort work
	// and answer 503 once it expires. 0 means 30s; negative disables.
	RequestTimeout time.Duration

	// ModelLoadAttempts retries the startup model load with exponential
	// backoff plus jitter — bootstrap environments often race the
	// trainer writing the model file. 0 or 1 means a single attempt.
	ModelLoadAttempts int
	// ModelRetryBase and ModelRetryMax bound the backoff schedule
	// (defaults 200ms and 5s).
	ModelRetryBase time.Duration
	ModelRetryMax  time.Duration

	// RemedyPolicy enables the remediation control plane: a policy
	// engine that walks fleet scores through cordon/drain/swap decisions
	// against a spare pool, exposed under /v1/remedy/*. Nil leaves
	// remediation disabled (the endpoints answer 409, like /v1/snapshot
	// without a WAL).
	RemedyPolicy *remedy.Policy
	// RemedySpares stocks the spare pool at startup.
	RemedySpares int
	// RemedyLogCap bounds the in-memory remediation event ring
	// (0 = remedy.DefaultRingCap).
	RemedyLogCap int

	// NodeName identifies this daemon in a cluster; it is reported by
	// GET /v1/health so routers and operators can tell nodes apart.
	// Empty is fine for a standalone daemon.
	NodeName string

	// Clock overrides the server's time source (request-duration and
	// scoring-latency observations, uptime and model-age gauges, model
	// load timestamps). Nil means time.Now. Tests inject a deterministic
	// clock so latency metrics are exact rather than merely plausible.
	Clock func() time.Time
}

const (
	defaultMaxBody        = 8 << 20
	defaultInflightIngest = 256
	defaultInflightScores = 4
	defaultRequestTimeout = 30 * time.Second
)

// Server wires the store, registry, scorer, and metrics into an HTTP
// handler. Create with New, mount via Handler.
type Server struct {
	cfg      Config
	store    *Store
	journal  *Journal // nil when WALDir is empty
	registry *Registry
	scorer   *Scorer
	metrics  *Metrics
	now      func() time.Time
	start    time.Time

	remedy *remedyPlane // nil when cfg.RemedyPolicy is nil

	ingestSem chan struct{}
	scoreSem  chan struct{}

	binStates sync.Pool // *binState scratch for /v1/ingest/bin

	reqs           *CounterVec
	reqDur         *Histogram
	ingested       *Counter
	ingestRejected *CounterVec
	scoredDrives   *Counter
	scoreDur       *Histogram
	loads          *Counter
	reloads        *Counter
	reloadFailures *Counter
	sheds          *CounterVec
	snapshotReqs   *Counter
	replicaApplied *Counter
	replicaSkipped *Counter
	walStreamed    *Counter
}

// New builds a server, loads the model from cfg.ModelPath (with
// backoff retries when configured), and — when cfg.WALDir is set —
// recovers durable fleet state from the snapshot and WAL tail. The
// daemon refuses to start without a servable model; later reload
// failures keep the last good model serving.
func New(cfg Config) (*Server, error) {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = defaultMaxBody
	}
	if cfg.WatchlistThreshold == 0 {
		cfg.WatchlistThreshold = 0.9
	}
	if cfg.WatchlistK == 0 {
		cfg.WatchlistK = 50
	}
	if cfg.MaxInflightIngest <= 0 {
		cfg.MaxInflightIngest = defaultInflightIngest
	}
	if cfg.MaxInflightScores <= 0 {
		cfg.MaxInflightScores = defaultInflightScores
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = defaultRequestTimeout
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	s := &Server{
		cfg:       cfg,
		store:     NewStore(cfg.Shards, cfg.History),
		registry:  NewRegistry(cfg.ModelPath, clock),
		scorer:    NewScorer(cfg.Workers),
		metrics:   NewMetrics(),
		now:       clock,
		start:     clock(),
		ingestSem: make(chan struct{}, cfg.MaxInflightIngest),
		scoreSem:  make(chan struct{}, cfg.MaxInflightScores),
		binStates: binStatePool(),
	}
	if err := s.loadModelWithRetry(); err != nil {
		return nil, err
	}
	if cfg.WALDir != "" {
		j, err := OpenJournal(s.store, JournalOptions{
			Dir:            cfg.WALDir,
			FS:             cfg.WALFS,
			SegmentBytes:   cfg.WALSegmentBytes,
			SyncEvery:      cfg.WALSyncEvery,
			SyncInterval:   cfg.WALSyncInterval,
			SnapshotEvery:  cfg.SnapshotEvery,
			AsyncSnapshots: !cfg.SyncSnapshots,
		})
		if err != nil {
			return nil, fmt.Errorf("serve: recovering durable state: %w", err)
		}
		s.journal = j
	}
	m := s.metrics
	s.reqs = m.NewCounterVec("ssdserved_http_requests_total",
		"HTTP requests served, by handler and status code.", "handler", "code")
	s.reqDur = m.NewHistogram("ssdserved_http_request_duration_seconds",
		"HTTP request latency.", DurationBuckets)
	s.ingested = m.NewCounter("ssdserved_ingest_records_total",
		"Drive-day records accepted into the store.")
	s.ingestRejected = m.NewCounterVec("ssdserved_ingest_rejected_total",
		"Drive-day records rejected at ingest, by reason.", "reason")
	s.scoredDrives = m.NewCounter("ssdserved_scored_drives_total",
		"Drives scored by fleet scoring passes.")
	s.scoreDur = m.NewHistogram("ssdserved_scoring_duration_seconds",
		"Latency of full-fleet scoring passes.", DurationBuckets)
	s.loads = m.NewCounter("ssdserved_model_loads_total",
		"Successful model loads, including the startup load.")
	s.reloads = m.NewCounter("ssdserved_model_reloads_total",
		"Successful reloads via POST /v1/model/reload; excludes the startup load, "+
			"so this counts exactly the hot swaps (e.g. trainer promotions).")
	s.reloadFailures = m.NewCounter("ssdserved_model_reload_failures_total",
		"Model reloads that failed and kept the previous model.")
	s.sheds = m.NewCounterVec("ssdserved_load_shed_total",
		"Requests shed with 429 because the handler's concurrency bound was full.",
		"handler")
	s.replicaApplied = m.NewCounter("ssdserved_replica_applied_total",
		"Records applied from a primary's WAL stream (replication pull).")
	s.replicaSkipped = m.NewCounter("ssdserved_replica_skipped_total",
		"Replicated records skipped as already present (benign re-pull overlap).")
	s.walStreamed = m.NewCounter("ssdserved_wal_stream_bytes_total",
		"Bytes served to followers over the WAL catch-up endpoint.")
	s.loads.Inc() // the startup load above; reloads stays 0 until a hot swap
	if j := s.journal; j != nil {
		s.snapshotReqs = m.NewCounter("ssdserved_snapshot_requests_total",
			"Snapshots requested via POST /v1/snapshot.")
		m.NewCounterFunc("ssdserved_wal_appends_total",
			"Records appended to the write-ahead log.",
			func() uint64 { return j.WALStats().Appends })
		m.NewCounterFunc("ssdserved_wal_fsyncs_total",
			"WAL fsyncs issued by the sync policy, rotations, and Sync calls.",
			func() uint64 { return j.WALStats().Fsyncs })
		m.NewCounterFunc("ssdserved_wal_rotations_total",
			"WAL segment rotations.",
			func() uint64 { return j.WALStats().Rotations })
		m.NewCounterFunc("ssdserved_wal_snapshots_total",
			"Store snapshots written.",
			func() uint64 { return j.WALStats().Snapshots })
		m.NewCounterFunc("ssdserved_wal_snapshot_failures_total",
			"Store snapshots that failed to write.",
			func() uint64 { return j.SnapshotFailures() })
		m.NewCounterFunc("ssdserved_wal_pruned_segments_total",
			"WAL segments removed because a snapshot covered them.",
			func() uint64 { return j.PrunedSegments() })
		rec := j.Recovery()
		m.NewCounterFunc("ssdserved_wal_recovery_truncations_total",
			"Torn or corrupt WAL tails truncated during boot recovery.",
			func() uint64 { return uint64(rec.Truncations) })
		m.NewCounterFunc("ssdserved_wal_replayed_records_total",
			"WAL records replayed into the store during boot recovery.",
			func() uint64 { return rec.Replayed })
		m.NewCounterFunc("ssdserved_wal_replay_duplicates_total",
			"Replayed WAL records already present via the snapshot.",
			func() uint64 { return rec.Duplicates })
		m.NewGaugeFunc("ssdserved_wal_last_lsn",
			"Most recently appended WAL log sequence number.",
			func() float64 { return float64(j.LastLSN()) })
	}
	m.NewGaugeFunc("ssdserved_fleet_drives",
		"Drives currently tracked in the state store.",
		func() float64 { return float64(s.store.Len()) })
	m.NewGaugeFunc("ssdserved_fleet_records",
		"Daily reports currently retained in the state store.",
		func() float64 { return float64(s.store.Records()) })
	m.NewGaugeFunc("ssdserved_model_version",
		"Reload generation of the serving model (1 = startup load).",
		func() float64 {
			_, info, ok := s.registry.Current()
			if !ok {
				return 0
			}
			return float64(info.Version)
		})
	m.NewGaugeFunc("ssdserved_model_age_seconds",
		"Seconds since the serving model was loaded.",
		func() float64 {
			_, info, ok := s.registry.Current()
			if !ok {
				return 0
			}
			return s.now().Sub(info.LoadedAt).Seconds()
		})
	m.NewGaugeFunc("ssdserved_model_loaded_timestamp_seconds",
		"Unix time the serving model was loaded.",
		func() float64 {
			_, info, ok := s.registry.Current()
			if !ok {
				return 0
			}
			return float64(info.LoadedAt.UnixNano()) / 1e9
		})
	m.NewGaugeFunc("ssdserved_uptime_seconds",
		"Seconds since the daemon started.",
		func() float64 { return s.now().Sub(s.start).Seconds() })
	if err := s.initRemedy(); err != nil {
		return nil, err
	}
	return s, nil
}

// loadModelWithRetry loads the startup model, retrying transient
// failures with exponential backoff plus jitter so a bootstrap daemon
// can win its race against the trainer still writing the model file.
func (s *Server) loadModelWithRetry() error {
	attempts := s.cfg.ModelLoadAttempts
	if attempts < 1 {
		attempts = 1
	}
	base := s.cfg.ModelRetryBase
	if base <= 0 {
		base = 200 * time.Millisecond
	}
	maxDelay := s.cfg.ModelRetryMax
	if maxDelay <= 0 {
		maxDelay = 5 * time.Second
	}
	var err error
	delay := base
	for attempt := 1; ; attempt++ {
		if _, err = s.registry.Load(); err == nil {
			return nil
		}
		if attempt >= attempts {
			return err
		}
		// Full jitter on top of the exponential step spreads retries
		// from daemons restarted in lockstep.
		sleep := delay + rand.N(delay/2+1)
		time.Sleep(sleep)
		delay *= 2
		if delay > maxDelay {
			delay = maxDelay
		}
	}
}

// Store exposes the drive-state store (for warm-up loaders and tests).
func (s *Server) Store() *Store { return s.store }

// Recovery reports what boot-time durability recovery reconstructed;
// ok is false when the daemon runs without a WAL.
func (s *Server) Recovery() (RecoveryInfo, bool) {
	if s.journal == nil {
		return RecoveryInfo{}, false
	}
	return s.journal.Recovery(), true
}

// Close flushes and closes the durability layer. Call after the HTTP
// server has drained so in-flight accepted records reach stable
// storage.
func (s *Server) Close() error {
	if s.journal == nil {
		return nil
	}
	return s.journal.Close()
}

// Metrics exposes the metrics registry so callers can add their own
// instruments before mounting the handler.
func (s *Server) Metrics() *Metrics { return s.metrics }

// CounterSnapshot returns the current value of every metrics series,
// keyed by full exposition name (see Metrics.Snapshot). Conformance
// harnesses compare it — or the equivalent parsed /metrics scrape —
// against independently tracked load: accepted + shed + rejected must
// account for every request driven.
func (s *Server) CounterSnapshot() map[string]float64 { return s.metrics.Snapshot() }

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern, name string, h func(http.ResponseWriter, *http.Request)) {
		mux.HandleFunc(pattern, s.instrument(name, h))
	}
	route("POST /v1/ingest", "ingest", s.handleIngest)
	route("POST /v1/ingest/batch", "ingest_batch", s.handleIngestBatch)
	route("POST /v1/ingest/bin", "ingest_bin", s.handleIngestBin)
	route("GET /v1/watchlist", "watchlist", s.handleWatchlist)
	route("GET /v1/drive/{id}", "drive", s.handleDrive)
	route("GET /v1/model", "model", s.handleModel)
	route("POST /v1/model/reload", "model_reload", s.handleModelReload)
	route("POST /v1/snapshot", "snapshot", s.handleSnapshot)
	route("POST /v1/remedy/evaluate", "remedy_evaluate", s.handleRemedyEvaluate)
	route("GET /v1/remedy/status", "remedy_status", s.handleRemedyStatus)
	route("GET /v1/remedy/drives", "remedy_drives", s.handleRemedyDrives)
	route("GET /v1/remedy/log", "remedy_log", s.handleRemedyLog)
	route("POST /v1/remedy/fail", "remedy_fail", s.handleRemedyFail)
	route("GET /healthz", "healthz", s.handleHealthz)
	route("GET /v1/health", "health", s.handleHealth)
	route("GET /v1/wal/stream", "wal_stream", s.handleWALStream)
	route("GET /metrics", "metrics", s.handleMetrics)
	return mux
}

// statusWriter captures the response code for instrumentation.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (s *Server) instrument(name string, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		begin := s.now()
		h(sw, r)
		s.reqDur.Observe(s.now().Sub(begin).Seconds())
		s.reqs.With(name, strconv.Itoa(sw.code)).Inc()
	}
}

// acquire takes a slot from a concurrency bound without blocking. When
// the bound is full — the WAL, store, or scorer has fallen behind — the
// request is shed with 429 and a Retry-After hint instead of queueing
// more work onto the backlog.
func (s *Server) acquire(w http.ResponseWriter, handler string, sem chan struct{}) bool {
	select {
	case sem <- struct{}{}:
		return true
	default:
		s.sheds.With(handler).Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "overloaded, retry later")
		return false
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// decodeJSON decodes a single JSON value from the (size-capped) body.
// It distinguishes oversized bodies (413) from malformed ones (400) via
// the returned status code.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) (int, error) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return http.StatusRequestEntityTooLarge,
				fmt.Errorf("body exceeds %d bytes", tooLarge.Limit)
		}
		return http.StatusBadRequest, fmt.Errorf("malformed JSON: %v", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return http.StatusBadRequest, errors.New("trailing data after JSON value")
	}
	return http.StatusOK, nil
}

// ingestOne validates and stores a single wire record — journaled when
// durability is enabled — tagging the rejection-reason counter on
// failure. An error wrapping ErrJournal means the record passed
// validation but could not be made durable; callers map it to 503.
func (s *Server) ingestOne(ir *IngestRecord) error {
	model, rec, err := ir.ToRecord()
	if err != nil {
		s.ingestRejected.With("invalid_record").Inc()
		return err
	}
	if s.journal != nil {
		err = s.journal.Upsert(ir.DriveID, model, rec)
	} else {
		err = s.store.Upsert(ir.DriveID, model, rec)
	}
	if err != nil {
		if errors.Is(err, ErrJournal) {
			s.ingestRejected.With("wal_error").Inc()
		} else {
			s.ingestRejected.With("store_conflict").Inc()
		}
		return err
	}
	s.ingested.Inc()
	return nil
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if !s.acquire(w, "ingest", s.ingestSem) {
		return
	}
	defer func() { <-s.ingestSem }()
	var ir IngestRecord
	if code, err := s.decodeJSON(w, r, &ir); err != nil {
		writeError(w, code, err.Error())
		return
	}
	if err := s.ingestOne(&ir); err != nil {
		code := http.StatusUnprocessableEntity
		if errors.Is(err, ErrJournal) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"accepted": 1})
}

// batchError reports one rejected record of a batch.
type batchError struct {
	Index   int    `json:"index"`
	DriveID uint32 `json:"drive_id"`
	Error   string `json:"error"`
}

func (s *Server) handleIngestBatch(w http.ResponseWriter, r *http.Request) {
	if !s.acquire(w, "ingest_batch", s.ingestSem) {
		return
	}
	defer func() { <-s.ingestSem }()
	var batch []IngestRecord
	if code, err := s.decodeJSON(w, r, &batch); err != nil {
		writeError(w, code, err.Error())
		return
	}
	ctx := r.Context()
	accepted := 0
	var rejected []batchError
	for i := range batch {
		// A large batch can outlive the request deadline; stop cleanly
		// with an exact accepted count rather than churn for a client
		// that already gave up. Records already applied stay applied.
		if i&127 == 0 && ctx.Err() != nil {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"error":    "request deadline exceeded mid-batch",
				"accepted": accepted,
				"rejected": len(rejected),
				"dropped":  len(batch) - i,
				"errors":   rejected,
			})
			return
		}
		if err := s.ingestOne(&batch[i]); err != nil {
			if errors.Is(err, ErrJournal) {
				// The WAL is failing; every further append would too.
				// Report what was durably accepted and stop.
				writeJSON(w, http.StatusServiceUnavailable, map[string]any{
					"error":    err.Error(),
					"accepted": accepted,
					"rejected": len(rejected),
					"dropped":  len(batch) - i,
					"errors":   rejected,
				})
				return
			}
			if len(rejected) < 10 {
				rejected = append(rejected, batchError{
					Index: i, DriveID: batch[i].DriveID, Error: err.Error(),
				})
			}
			continue
		}
		accepted++
	}
	code := http.StatusAccepted
	if accepted == 0 && len(batch) > 0 {
		code = http.StatusUnprocessableEntity
	}
	writeJSON(w, code, map[string]any{
		"accepted": accepted,
		"rejected": len(batch) - accepted,
		"errors":   rejected,
	})
}

// queryInt parses an optional integer query parameter.
func queryInt(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %v", name, err)
	}
	return n, nil
}

func (s *Server) handleWatchlist(w http.ResponseWriter, r *http.Request) {
	pred, info, ok := s.registry.Current()
	if !ok {
		writeError(w, http.StatusServiceUnavailable, "no model loaded")
		return
	}
	// A full-fleet scoring pass walks every shard; bounding concurrent
	// passes keeps a scrape storm from starving ingest.
	if !s.acquire(w, "watchlist", s.scoreSem) {
		return
	}
	defer func() { <-s.scoreSem }()
	k, err := queryInt(r, "k", s.cfg.WatchlistK)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	since, err := queryInt(r, "since", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	threshold := s.cfg.WatchlistThreshold
	if v := r.URL.Query().Get("threshold"); v != "" {
		threshold, err = strconv.ParseFloat(v, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad threshold: %v", err))
			return
		}
	}
	begin := s.now()
	units := s.store.ScoreUnits(int32(since))
	scored := s.scorer.Score(pred, units)
	s.scoreDur.Observe(s.now().Sub(begin).Seconds())
	s.scoredDrives.Add(uint64(len(scored)))
	if r.Context().Err() != nil {
		writeError(w, http.StatusServiceUnavailable, "request deadline exceeded during scoring")
		return
	}
	ranked := Rank(scored, threshold, k)
	type item struct {
		DriveID uint32  `json:"drive_id"`
		Model   string  `json:"model"`
		Score   float64 `json:"score"`
		Day     int32   `json:"day"`
		Age     int32   `json:"age"`
		// Threshold and Margin report the operating point each item was
		// ranked against and how far above it the score sits — the
		// remediation planner consumes margins, and existing clients see
		// only added fields.
		Threshold float64 `json:"threshold"`
		Margin    float64 `json:"margin"`
	}
	items := make([]item, len(ranked))
	for i, sc := range ranked {
		items[i] = item{DriveID: sc.ID, Model: sc.Model.String(),
			Score: sc.Score, Day: sc.Day, Age: sc.Age,
			Threshold: threshold, Margin: sc.Score - threshold}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"model_version": info.Version,
		"lookahead":     info.Lookahead,
		"threshold":     threshold,
		"fleet_size":    len(units),
		"count":         len(items),
		"items":         items,
	})
}

func (s *Server) handleDrive(w http.ResponseWriter, r *http.Request) {
	id64, err := strconv.ParseUint(r.PathValue("id"), 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad drive id: %v", err))
		return
	}
	snap, ok := s.store.Get(uint32(id64))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown drive")
		return
	}
	resp := map[string]any{
		"drive_id": snap.ID,
		"model":    snap.Model.String(),
		"days":     len(snap.Recent),
	}
	n := len(snap.Recent)
	if n > 0 {
		resp["last"] = WireRecord(snap.ID, snap.Model, &snap.Recent[n-1])
	}
	if pred, info, ok := s.registry.Current(); ok && n > 0 {
		var prev *trace.DayRecord
		if n > 1 {
			prev = &snap.Recent[n-2]
		}
		resp["score"] = pred.ScoreRecord(&snap.Recent[n-1], prev)
		resp["model_version"] = info.Version
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	_, info, ok := s.registry.Current()
	if !ok {
		writeError(w, http.StatusServiceUnavailable, "no model loaded")
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleModelReload(w http.ResponseWriter, r *http.Request) {
	info, err := s.registry.Load()
	if err != nil {
		s.reloadFailures.Inc()
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.loads.Inc()
	s.reloads.Inc()
	writeJSON(w, http.StatusOK, info)
}

// handleSnapshot forces a store snapshot (and prunes covered WAL
// segments) on demand, e.g. before planned maintenance.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.journal == nil {
		writeError(w, http.StatusConflict, "durability disabled: daemon runs without a WAL")
		return
	}
	s.snapshotReqs.Inc()
	if err := s.journal.Snapshot(); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"snapshot_lsn": s.journal.LastLSN(),
		"drives":       s.store.Len(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	_, info, ok := s.registry.Current()
	resp := map[string]any{
		"status":         "ok",
		"uptime_seconds": s.now().Sub(s.start).Seconds(),
		"drives":         s.store.Len(),
		"model_loaded":   ok,
		"wal":            s.journal != nil,
	}
	if ok {
		resp["model_version"] = info.Version
	}
	if s.journal != nil {
		resp["wal_last_lsn"] = s.journal.LastLSN()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", MetricsContentType)
	//ssdlint:allow droppederr scrape write failed means the client hung up; nothing durable is at stake
	s.metrics.WriteTo(w)
}
