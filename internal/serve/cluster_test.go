package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

func TestHealthEndpointReportsReadiness(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.NodeName = "nodeA"
		c.WALDir = t.TempDir()
	})
	var health struct {
		Status      string  `json:"status"`
		Node        string  `json:"node"`
		ModelLoaded bool    `json:"model_loaded"`
		Version     int     `json:"model_version"`
		WALLastLSN  *uint64 `json:"wal_last_lsn"`
	}
	resp := getJSON(t, ts.URL+"/v1/health", &health)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health status %d", resp.StatusCode)
	}
	if health.Status != "ready" || health.Node != "nodeA" || !health.ModelLoaded {
		t.Fatalf("health = %+v", health)
	}
	if health.WALLastLSN == nil {
		t.Fatal("durable node reports no wal_last_lsn")
	}
}

func TestWALStreamServesAcceptedRecords(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.WALDir = t.TempDir() })

	resp, body := postJSON(t, ts.URL+"/v1/ingest/batch", fleetDay(1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var rep struct {
		Accepted int `json:"accepted"`
	}
	if err := json.Unmarshal(body, &rep); err != nil || rep.Accepted == 0 {
		t.Fatalf("batch reply %s (%v)", body, err)
	}

	get := func(url string) (int, []byte) {
		t.Helper()
		r, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		b, err := io.ReadAll(r.Body)
		if err != nil {
			t.Fatal(err)
		}
		return r.StatusCode, b
	}

	code, data := get(ts.URL + "/v1/wal/stream?from=1")
	if code != http.StatusOK {
		t.Fatalf("stream status %d: %s", code, data)
	}
	frames := 0
	expect := uint64(1)
	for len(data) > 0 {
		n, lsn, payload := ParseStreamFrame(data)
		if n == 0 {
			t.Fatalf("damaged frame at offset %d of stream", frames)
		}
		if lsn != expect {
			t.Fatalf("frame %d has lsn %d, want %d", frames, lsn, expect)
		}
		if _, _, _, err := DecodeWALRecord(payload); err != nil {
			t.Fatalf("frame %d undecodable: %v", frames, err)
		}
		frames++
		expect++
		data = data[n:]
	}
	if frames != rep.Accepted {
		t.Fatalf("streamed %d frames, accepted %d records", frames, rep.Accepted)
	}

	// Caught up: an empty 200 body.
	code, data = get(ts.URL + "/v1/wal/stream?from=" + jsonItoa(frames+1))
	if code != http.StatusOK || len(data) != 0 {
		t.Fatalf("caught-up stream: status %d, %d bytes", code, len(data))
	}

	// A byte budget truncates at a frame boundary, never mid-frame.
	code, data = get(ts.URL + "/v1/wal/stream?from=1&max_bytes=64")
	if code != http.StatusOK || len(data) == 0 {
		t.Fatalf("budgeted stream: status %d, %d bytes", code, len(data))
	}
	n, lsn, _ := ParseStreamFrame(data)
	if n == 0 || lsn != 1 {
		t.Fatalf("budgeted stream first frame: n=%d lsn=%d", n, lsn)
	}

	if code, _ := get(ts.URL + "/v1/wal/stream?from=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad from: status %d, want 400", code)
	}
}

func TestWALStreamWithoutJournal(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/v1/wal/stream?from=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status %d, want 409 without a WAL", resp.StatusCode)
	}
}

func TestApplyReplicatedMirrorsState(t *testing.T) {
	primary, pts := newTestServer(t, func(c *Config) { c.WALDir = t.TempDir() })
	replica, _ := newTestServer(t, func(c *Config) { c.WALDir = t.TempDir() })

	if resp, body := postJSON(t, pts.URL+"/v1/ingest/batch", fleetDay(1)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}

	// Pull the primary's stream and apply every frame to the replica.
	resp, err := http.Get(pts.URL + "/v1/wal/stream?from=1")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	applied, skipped := 0, 0
	stream := data
	for len(stream) > 0 {
		n, _, payload := ParseStreamFrame(stream)
		if n == 0 {
			t.Fatal("damaged frame")
		}
		id, model, rec, err := DecodeWALRecord(payload)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := replica.ApplyReplicated(id, model, rec)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			applied++
		} else {
			skipped++
		}
		stream = stream[n:]
	}
	if applied == 0 || skipped != 0 {
		t.Fatalf("first apply pass: applied=%d skipped=%d", applied, skipped)
	}
	if replica.store.Len() != primary.store.Len() {
		t.Fatalf("replica holds %d drives, primary %d", replica.store.Len(), primary.store.Len())
	}

	// Re-applying the same stream is benign: everything skips, the
	// overlap a follower re-pulling from zero after restart produces.
	stream = data
	for len(stream) > 0 {
		n, _, payload := ParseStreamFrame(stream)
		id, model, rec, _ := DecodeWALRecord(payload)
		ok, err := replica.ApplyReplicated(id, model, rec)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatal("duplicate replicated record applied twice")
		}
		stream = stream[n:]
	}
}

// jsonItoa keeps the test free of a strconv import dance.
func jsonItoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}
