package failure

import (
	"testing"

	"ssdfail/internal/fleetsim"
	"ssdfail/internal/trace"
)

// buildDrive constructs a drive with the given (day, active) reports.
type rep struct {
	day    int32
	active bool
}

func buildDrive(id uint32, first int32, reps []rep, swaps ...int32) trace.Drive {
	d := trace.Drive{ID: id, Model: trace.MLCA}
	for _, r := range reps {
		rec := trace.DayRecord{Day: r.day, Age: r.day - first}
		if r.active {
			rec.Reads = 100
			rec.Writes = 100
		}
		d.Days = append(d.Days, rec)
	}
	for _, s := range swaps {
		d.Swaps = append(d.Swaps, trace.SwapEvent{Day: s})
	}
	return d
}

func analyzeOne(d trace.Drive) *Analysis {
	f := &trace.Fleet{Horizon: 1000, Drives: []trace.Drive{d}}
	return Analyze(f)
}

func TestSimpleSwapReconstruction(t *testing.T) {
	// Active days 10..14, inactive 15..16, swap at 18.
	d := buildDrive(1, 10, []rep{
		{10, true}, {11, true}, {12, true}, {13, true}, {14, true},
		{15, false}, {16, false},
	}, 18)
	a := analyzeOne(d)
	if len(a.Events) != 1 {
		t.Fatalf("events = %d, want 1", len(a.Events))
	}
	e := a.Events[0]
	if e.FailDay != 14 {
		t.Errorf("FailDay = %d, want 14 (last active day)", e.FailDay)
	}
	if e.NonOpDays != 4 {
		t.Errorf("NonOpDays = %d, want 4", e.NonOpDays)
	}
	if e.Age != 4 {
		t.Errorf("Age = %d, want 4", e.Age)
	}
	if e.ReturnDay != -1 || e.RepairDays != -1 {
		t.Errorf("expected censored repair, got return=%d repair=%d", e.ReturnDay, e.RepairDays)
	}
	if len(a.Periods) != 1 {
		t.Fatalf("periods = %d, want 1", len(a.Periods))
	}
	p := a.Periods[0]
	if p.Start != 10 || p.End != 14 || p.Censored {
		t.Errorf("period = %+v", p)
	}
}

func TestNonReportingGapBeforeSwap(t *testing.T) {
	// Drive stops reporting entirely after day 20; swap at 30.
	d := buildDrive(1, 10, []rep{{10, true}, {15, true}, {20, true}}, 30)
	a := analyzeOne(d)
	e := a.Events[0]
	if e.FailDay != 20 {
		t.Errorf("FailDay = %d, want 20", e.FailDay)
	}
	if e.NonOpDays != 10 {
		t.Errorf("NonOpDays = %d, want 10", e.NonOpDays)
	}
}

func TestRepairReentry(t *testing.T) {
	d := buildDrive(1, 10, []rep{
		{10, true}, {11, true},
		{50, true}, {51, true}, // re-entry after repair
	}, 15)
	a := analyzeOne(d)
	if len(a.Events) != 1 {
		t.Fatalf("events = %d", len(a.Events))
	}
	e := a.Events[0]
	if e.ReturnDay != 50 {
		t.Errorf("ReturnDay = %d, want 50", e.ReturnDay)
	}
	if e.RepairDays != 35 {
		t.Errorf("RepairDays = %d, want 35", e.RepairDays)
	}
	// Should have two periods: one failed, one censored post-return.
	if len(a.Periods) != 2 {
		t.Fatalf("periods = %d, want 2", len(a.Periods))
	}
	if !a.Periods[1].Censored || a.Periods[1].Start != 50 || a.Periods[1].End != 51 {
		t.Errorf("trailing period = %+v", a.Periods[1])
	}
}

func TestTwoSwaps(t *testing.T) {
	d := buildDrive(1, 10, []rep{
		{10, true}, {12, true},
		{40, true}, {42, true}, {43, false},
	}, 15, 50)
	a := analyzeOne(d)
	if len(a.Events) != 2 {
		t.Fatalf("events = %d, want 2", len(a.Events))
	}
	if a.Events[0].FailDay != 12 || a.Events[1].FailDay != 42 {
		t.Errorf("fail days = %d, %d; want 12, 42", a.Events[0].FailDay, a.Events[1].FailDay)
	}
	if a.Events[0].ReturnDay != 40 {
		t.Errorf("first return = %d, want 40", a.Events[0].ReturnDay)
	}
	if a.Events[1].ReturnDay != -1 {
		t.Errorf("second return = %d, want -1", a.Events[1].ReturnDay)
	}
	dist := a.FailureCountDistribution(4)
	if dist[2] != 1 {
		t.Errorf("failure count distribution = %v", dist)
	}
}

func TestNoSwapAllCensored(t *testing.T) {
	d := buildDrive(1, 10, []rep{{10, true}, {20, true}, {30, true}})
	a := analyzeOne(d)
	if len(a.Events) != 0 {
		t.Fatalf("events = %d, want 0", len(a.Events))
	}
	if len(a.Periods) != 1 || !a.Periods[0].Censored {
		t.Fatalf("periods = %+v", a.Periods)
	}
	if a.Periods[0].Length() != 20 {
		t.Errorf("censored length = %d, want 20", a.Periods[0].Length())
	}
	if a.FailedDriveCount() != 0 {
		t.Error("FailedDriveCount should be 0")
	}
}

func TestSwapWithNoWindowRecords(t *testing.T) {
	// Swap before any record in its window: unknown failure time.
	d := buildDrive(1, 30, []rep{{30, true}}, 20)
	a := analyzeOne(d)
	if len(a.Events) != 1 {
		t.Fatalf("events = %d", len(a.Events))
	}
	e := a.Events[0]
	if e.FailRecIdx != -1 || e.FailDay != 20 || e.NonOpDays != 0 {
		t.Errorf("unknown-failure event = %+v", e)
	}
	if e.Age != -1 {
		t.Errorf("Age = %d, want -1", e.Age)
	}
}

func TestEmptyDrive(t *testing.T) {
	d := trace.Drive{ID: 1, Model: trace.MLCA}
	a := analyzeOne(d)
	if len(a.Events) != 0 || len(a.Periods) != 0 {
		t.Error("empty drive should produce nothing")
	}
}

func TestInactiveOnlyWindowFallsBack(t *testing.T) {
	// All records in window are inactive; failure day = last record.
	d := buildDrive(1, 10, []rep{{10, false}, {11, false}}, 14)
	a := analyzeOne(d)
	if a.Events[0].FailDay != 11 {
		t.Errorf("FailDay = %d, want 11", a.Events[0].FailDay)
	}
}

func TestYoungClassification(t *testing.T) {
	e := Event{Age: 90}
	if !e.Young() {
		t.Error("age 90 should be young (boundary)")
	}
	e.Age = 91
	if e.Young() {
		t.Error("age 91 should be old")
	}
	e.Age = -1
	if e.Young() {
		t.Error("unknown age should not be young")
	}
}

func TestAggregates(t *testing.T) {
	d1 := buildDrive(1, 10, []rep{{10, true}, {12, true}, {40, true}}, 15)
	d2 := buildDrive(2, 10, []rep{{10, true}, {20, true}}, 25)
	f := &trace.Fleet{Horizon: 1000, Drives: []trace.Drive{d1, d2}}
	a := Analyze(f)

	obs, cens := a.RepairTimes()
	if len(obs) != 1 || obs[0] != 25 || cens != 1 {
		t.Errorf("RepairTimes = %v, %d", obs, cens)
	}
	nonOp := a.NonOpDurations()
	if len(nonOp) != 2 || nonOp[0] != 3 || nonOp[1] != 5 {
		t.Errorf("NonOpDurations = %v", nonOp)
	}
	fin, cens2 := a.OperationalLengths()
	if len(fin) != 2 || cens2 != 1 {
		t.Errorf("OperationalLengths = %v, %d", fin, cens2)
	}
	ages := a.FailureAges()
	if len(ages) != 2 || ages[0] != 2 || ages[1] != 10 {
		t.Errorf("FailureAges = %v", ages)
	}
	fd := a.FailDaysByDrive()
	if len(fd) != 2 || fd[0][0] != 12 || fd[1][0] != 20 {
		t.Errorf("FailDaysByDrive = %v", fd)
	}
	if rec := a.FailureRecord(&a.Events[0]); rec == nil || rec.Day != 12 {
		t.Errorf("FailureRecord = %+v", rec)
	}
	missing := Event{FailRecIdx: -1}
	if a.FailureRecord(&missing) != nil {
		t.Error("FailureRecord of unknown failure should be nil")
	}
}

// TestReconstructionMatchesSimulatorTruth validates the reconstruction
// against the generator's ground truth on a simulated fleet: every
// observed swap must be reconstructed, and the reconstructed failure day
// must be at or slightly before the true failure day (earlier only when
// the true failure day's report was dropped).
func TestReconstructionMatchesSimulatorTruth(t *testing.T) {
	cfg := fleetsim.DefaultConfig(21, 150)
	cfg.HorizonDays = 1500
	cfg.EarlyWindow = 400
	fleet, truth, err := fleetsim.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(fleet)

	truthSwaps := 0
	exact, near, total := 0, 0, 0
	for di := range truth.Drives {
		evIdx := 0
		for _, ft := range truth.Drives[di].Failures {
			if ft.SwapDay < 0 {
				continue // censored beyond horizon: invisible to the trace
			}
			truthSwaps++
			if evIdx >= len(a.PerDrive[di]) {
				t.Errorf("drive %d: truth swap at %d not reconstructed", di, ft.SwapDay)
				continue
			}
			e := &a.Events[a.PerDrive[di][evIdx]]
			evIdx++
			if e.SwapDay != ft.SwapDay {
				t.Errorf("drive %d: swap day %d != truth %d", di, e.SwapDay, ft.SwapDay)
			}
			total++
			switch {
			case e.FailDay == ft.FailDay:
				exact++
			case e.FailDay < ft.FailDay && ft.FailDay-e.FailDay <= 7:
				near++
			default:
				t.Errorf("drive %d: reconstructed fail day %d vs truth %d",
					di, e.FailDay, ft.FailDay)
			}
		}
	}
	if truthSwaps != len(a.Events) {
		t.Errorf("reconstructed %d events, truth has %d observed swaps",
			len(a.Events), truthSwaps)
	}
	if total == 0 {
		t.Fatal("no failures to compare")
	}
	// The failure day is always recorded by the simulator, so the match
	// should be essentially exact.
	if frac := float64(exact) / float64(total); frac < 0.95 {
		t.Errorf("exact fail-day reconstruction rate = %.3f (exact=%d near=%d total=%d)",
			frac, exact, near, total)
	}
}
