// Package failure reconstructs the paper's Section 3 failure timeline
// from the trace alone: each swap event is traced back to the failure
// that caused it (the drive's last day of operational activity before
// the swap), operational and non-operational periods are measured, and
// the repair process is analyzed with right-censoring at the trace
// horizon.
package failure

import (
	"ssdfail/internal/trace"
)

// YoungAgeDays is the infant-mortality boundary: failures at age <= 90
// days are "young", the rest "old" (Section 4.1).
const YoungAgeDays = 90

// Event describes one reconstructed swap-inducing failure.
type Event struct {
	DriveIdx int   // index into Fleet.Drives
	SwapDay  int32 // day of the swap event
	// FailDay is the reconstructed failure day: the last day of
	// operational (read/write) activity before the swap. If the drive
	// has no active record before the swap, the last record day is used.
	FailDay    int32
	FailRecIdx int   // index into Drive.Days of the failure-day record, or -1
	Age        int32 // drive age at failure, or -1 if unknown
	NonOpDays  int32 // SwapDay - FailDay (length of the non-operational period)
	// ReturnDay is the first report day after the swap (re-entry from
	// repair), or -1 if the drive is never observed to return.
	ReturnDay  int32
	RepairDays int32 // ReturnDay - SwapDay, or -1 if censored
}

// Young reports whether the failure occurred in the infant period.
func (e *Event) Young() bool { return e.Age >= 0 && e.Age <= YoungAgeDays }

// Period is one operational period: from entry into production (first
// report of the drive's life, or re-entry after a repair) until failure,
// or until the trace ends (censored).
type Period struct {
	DriveIdx int
	Start    int32 // first day of the period
	End      int32 // failure day, or last observation day when censored
	Censored bool  // true if the period is not observed to end in failure
}

// Length returns the period length in days.
func (p *Period) Length() int32 { return p.End - p.Start }

// Analysis is the full reconstruction for one fleet.
type Analysis struct {
	Fleet   *trace.Fleet
	Events  []Event  // all reconstructed failures, in drive order
	Periods []Period // all operational periods

	// PerDrive[i] lists the indices into Events for drive i.
	PerDrive [][]int
}

// Analyze reconstructs failure events and operational periods for every
// drive in the fleet.
func Analyze(f *trace.Fleet) *Analysis {
	a := &Analysis{Fleet: f, PerDrive: make([][]int, len(f.Drives))}
	for i := range f.Drives {
		a.analyzeDrive(i)
	}
	return a
}

func (a *Analysis) analyzeDrive(di int) {
	d := &a.Fleet.Drives[di]
	if len(d.Days) == 0 {
		return
	}
	// prevBoundary is the day after which the current operational
	// period's records begin (exclusive): the previous swap day.
	prevBoundary := int32(-1)
	for _, s := range d.Swaps {
		ev := Event{DriveIdx: di, SwapDay: s.Day, FailRecIdx: -1, Age: -1,
			ReturnDay: -1, RepairDays: -1}
		// Scan records in (prevBoundary, swapDay) for the last active
		// day; fall back to the last record in the window.
		lastRec := -1
		lastActive := -1
		for j := range d.Days {
			day := d.Days[j].Day
			if day <= prevBoundary || day >= s.Day {
				continue
			}
			lastRec = j
			if d.Days[j].Active() {
				lastActive = j
			}
		}
		failIdx := lastActive
		if failIdx < 0 {
			failIdx = lastRec
		}
		var periodStart int32 = -1
		for j := range d.Days {
			if d.Days[j].Day > prevBoundary {
				periodStart = d.Days[j].Day
				break
			}
		}
		if failIdx >= 0 {
			ev.FailRecIdx = failIdx
			ev.FailDay = d.Days[failIdx].Day
			ev.Age = d.Days[failIdx].Age
			ev.NonOpDays = s.Day - ev.FailDay
			if periodStart >= 0 && periodStart <= ev.FailDay {
				a.Periods = append(a.Periods, Period{
					DriveIdx: di, Start: periodStart, End: ev.FailDay,
				})
			}
		} else {
			// No records in the window at all: the failure time is
			// unknown; attribute it to the swap day itself.
			ev.FailDay = s.Day
			ev.NonOpDays = 0
		}
		// Re-entry: first record after the swap day.
		for j := range d.Days {
			if d.Days[j].Day > s.Day {
				ev.ReturnDay = d.Days[j].Day
				ev.RepairDays = ev.ReturnDay - s.Day
				break
			}
		}
		a.PerDrive[di] = append(a.PerDrive[di], len(a.Events))
		a.Events = append(a.Events, ev)
		prevBoundary = s.Day
	}
	// Trailing operational period after the last swap (or the whole
	// life if the drive never swapped), censored at the last observation.
	var start int32 = -1
	var lastActive int32 = -1
	for j := range d.Days {
		day := d.Days[j].Day
		if day <= prevBoundary {
			continue
		}
		if start < 0 {
			start = day
		}
		if d.Days[j].Active() {
			lastActive = day
		}
	}
	if start >= 0 && lastActive >= start {
		a.Periods = append(a.Periods, Period{
			DriveIdx: di, Start: start, End: lastActive, Censored: true,
		})
	}
}

// FailedDriveCount returns the number of drives with at least one event.
func (a *Analysis) FailedDriveCount() int {
	n := 0
	for _, evs := range a.PerDrive {
		if len(evs) > 0 {
			n++
		}
	}
	return n
}

// FailureCountDistribution returns counts[k] = number of drives with
// exactly k failures, for k in [0, maxK]; drives with more than maxK
// failures are counted in the last bucket.
func (a *Analysis) FailureCountDistribution(maxK int) []int {
	counts := make([]int, maxK+1)
	for _, evs := range a.PerDrive {
		k := len(evs)
		if k > maxK {
			k = maxK
		}
		counts[k]++
	}
	return counts
}

// FailDaysByDrive returns, for each drive, the sorted list of
// reconstructed failure days — the labeling input for prediction.
func (a *Analysis) FailDaysByDrive() [][]int32 {
	out := make([][]int32, len(a.PerDrive))
	for di, evs := range a.PerDrive {
		for _, ei := range evs {
			out[di] = append(out[di], a.Events[ei].FailDay)
		}
	}
	return out
}

// RepairTimes splits events into observed repair durations and a count
// of censored (never-returned) repairs, the input to Figure 5/Table 5.
func (a *Analysis) RepairTimes() (observed []float64, censored int) {
	for i := range a.Events {
		if a.Events[i].RepairDays >= 0 {
			observed = append(observed, float64(a.Events[i].RepairDays))
		} else {
			censored++
		}
	}
	return observed, censored
}

// NonOpDurations returns the non-operational period lengths in days
// (Figure 4). Events with unknown failure days contribute 0.
func (a *Analysis) NonOpDurations() []float64 {
	out := make([]float64, 0, len(a.Events))
	for i := range a.Events {
		out = append(out, float64(a.Events[i].NonOpDays))
	}
	return out
}

// OperationalLengths returns finished operational period lengths and the
// number of censored periods (Figure 3).
func (a *Analysis) OperationalLengths() (finished []float64, censored int) {
	for i := range a.Periods {
		if a.Periods[i].Censored {
			censored++
		} else {
			finished = append(finished, float64(a.Periods[i].Length()))
		}
	}
	return finished, censored
}

// FailureAges returns the drive age (in days) at each failure with a
// known age (Figure 6).
func (a *Analysis) FailureAges() []float64 {
	var out []float64
	for i := range a.Events {
		if a.Events[i].Age >= 0 {
			out = append(out, float64(a.Events[i].Age))
		}
	}
	return out
}

// FailureRecord returns the day record at the reconstructed failure day
// of the event, or nil if none exists.
func (a *Analysis) FailureRecord(e *Event) *trace.DayRecord {
	if e.FailRecIdx < 0 {
		return nil
	}
	return &a.Fleet.Drives[e.DriveIdx].Days[e.FailRecIdx]
}
