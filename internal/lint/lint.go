// Package lint implements ssdlint, a dependency-free static-analysis
// pass over this module built on the standard library's go/parser,
// go/ast, and go/types. It enforces the source-level contracts the
// paper reproduction depends on:
//
//   - nondeterminism: the experiment pipeline (fleetsim, dataset, ml,
//     expgrid, experiments, loadgen schedule construction) must produce
//     bit-identical outputs at any worker count, so wall-clock reads
//     and global math/rand draws are banned there — only injected
//     clocks and key-derived seeds are legal.
//   - maporder: iterating a Go map feeds emission (appends, writers,
//     encoders, hashes) in a random order; without an intervening sort
//     that quietly destroys schedule hashes and byte-equality goldens.
//   - droppederr: in internal/wal and internal/serve a swallowed error
//     from Sync, Flush, Close, or Write is a durability hole — an
//     fsync failure the operator never hears about.
//   - clockpath: internal/serve routes time through an injected clock
//     seam so frozen-clock tests cover every handler; direct
//     time.Now()/time.Since() calls bypass it.
//
// Four further analyzers are built on a per-function CFG and forward
// dataflow framework (cfg.go) with memoized call-effect summaries
// (summary.go):
//
//   - hotalloc: allocation sites in functions under the DESIGN §15
//     zero-alloc contract (//ssdlint:hotpath or the scope table), with
//     CFG-detected error paths exempt.
//   - poolescape: sync.Pool values escaping their Get/Put ownership
//     window, or used after Put, tracked as taint through the CFG.
//   - lockheld: blocking operations reachable while a sync.Mutex or
//     RWMutex is held, with defer-unlock recognized and module calls
//     classified through the summaries.
//   - goroleak: goroutines in the long-running daemon packages with no
//     visible lifecycle signal.
//
// Findings can be suppressed inline with
//
//	//ssdlint:allow <analyzer> <reason>
//
// on (or immediately above) the offending line, and pre-existing
// accepted findings can be parked in a committed baseline file so they
// do not block CI while new ones still do.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// A Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"` // module-relative path
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

// String renders the finding in the classic file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// A Package is one loaded, type-checked package handed to analyzers.
type Package struct {
	Path  string // import path, e.g. ssdfail/internal/serve
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// loader is the Loader that produced this package; the dataflow
	// analyzers reach the shared call-effect summary cache through it.
	loader *Loader
}

// Summaries returns the call-effect summary cache shared by every
// package of this loader.
func (p *Package) Summaries() *SummaryCache {
	return p.loader.Summaries
}

// An Analyzer is one named check. Check is only invoked for files the
// analyzer's scope admits; report attributes the finding.
type Analyzer struct {
	Name string
	Doc  string
	// InScope reports whether the analyzer applies to the given file of
	// the given package. Fixture packages under a testdata/<name>
	// directory are always in scope for analyzer <name>, so the
	// committed fixtures exercise every analyzer end to end.
	InScope func(pkgPath, filename string) bool
	Check   func(p *Package, inScope func(*ast.File) bool, report func(pos token.Pos, msg string))
}

// Analyzers returns the full analyzer set in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NondeterminismAnalyzer(),
		MapOrderAnalyzer(),
		DroppedErrAnalyzer(),
		ClockPathAnalyzer(),
		HotAllocAnalyzer(),
		PoolEscapeAnalyzer(),
		LockHeldAnalyzer(),
		GoroLeakAnalyzer(),
	}
}

// AnalyzerNames returns the known analyzer names in stable order.
func AnalyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// run applies every analyzer to one package and returns raw findings
// (suppressions and baseline are applied by the caller).
func run(p *Package, analyzers []*Analyzer, rel func(string) string) []Finding {
	var out []Finding
	for _, a := range analyzers {
		inScope := func(f *ast.File) bool {
			return a.InScope(p.Path, p.Fset.Position(f.Pos()).Filename)
		}
		any := false
		for _, f := range p.Files {
			if inScope(f) {
				any = true
				break
			}
		}
		if !any {
			continue
		}
		a.Check(p, inScope, func(pos token.Pos, msg string) {
			position := p.Fset.Position(pos)
			out = append(out, Finding{
				Analyzer: a.Name,
				Pos:      position,
				File:     rel(position.Filename),
				Line:     position.Line,
				Col:      position.Column,
				Message:  msg,
			})
		})
	}
	return out
}
