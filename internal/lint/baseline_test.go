package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baselineClockProgram = `package fleetsim

import "time"

func Stamp() time.Time { return time.Now() }
`

func TestBaselineParksFinding(t *testing.T) {
	root := writeTestModule(t, map[string]string{
		"internal/fleetsim/clock.go": baselineClockProgram,
	})
	base := filepath.Join(root, ".ssdlint-baseline")
	err := os.WriteFile(base, []byte(
		"# accepted\n"+
			"nondeterminism\tinternal/fleetsim/clock.go\twall clock read (time.Now) in a deterministic package; only injected clocks are allowed\n"), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := Run(Options{Dir: root, Patterns: []string{"./..."}, BaselinePath: base,
		Stdout: &stdout, Stderr: &stderr})
	if code != ExitClean {
		t.Fatalf("exit = %d, want clean: baselined finding must not fail\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
	if strings.Contains(stderr.String(), "stale baseline") {
		t.Errorf("live baseline entry reported stale:\n%s", stderr.String())
	}
}

func TestBaselineDoesNotHideNewFindings(t *testing.T) {
	root := writeTestModule(t, map[string]string{
		"internal/fleetsim/clock.go": baselineClockProgram,
		"internal/fleetsim/rand.go": `package fleetsim

import "math/rand"

func Draw() float64 { return rand.Float64() }
`,
	})
	base := filepath.Join(root, ".ssdlint-baseline")
	err := os.WriteFile(base, []byte(
		"nondeterminism\tinternal/fleetsim/clock.go\twall clock read (time.Now) in a deterministic package; only injected clocks are allowed\n"), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := Run(Options{Dir: root, Patterns: []string{"./..."}, BaselinePath: base,
		Stdout: &stdout, Stderr: &stderr})
	if code != ExitFindings {
		t.Fatalf("exit = %d, want findings: the rand.Float64 finding is not baselined", code)
	}
	out := stdout.String()
	if strings.Contains(out, "clock.go") {
		t.Errorf("baselined finding still printed:\n%s", out)
	}
	if !strings.Contains(out, "rand.go") {
		t.Errorf("fresh finding missing:\n%s", out)
	}
}

// TestStaleBaselineReportedRemovable is the satellite contract: an
// entry matching nothing in the tree is called out as removable (but
// does not fail the run by itself).
func TestStaleBaselineReportedRemovable(t *testing.T) {
	root := writeTestModule(t, map[string]string{
		"internal/report/ok.go": "package report\n\nfunc OK() int { return 1 }\n",
	})
	base := filepath.Join(root, ".ssdlint-baseline")
	err := os.WriteFile(base, []byte(
		"nondeterminism\tinternal/fleetsim/gone.go\twall clock read (time.Now) in a deterministic package; only injected clocks are allowed\n"), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := Run(Options{Dir: root, Patterns: []string{"./..."}, BaselinePath: base,
		Stdout: &stdout, Stderr: &stderr})
	if code != ExitClean {
		t.Fatalf("exit = %d, want clean (stale entries alone must not fail)\nstderr: %s",
			code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "stale baseline entry (removable)") ||
		!strings.Contains(stderr.String(), "gone.go") {
		t.Errorf("stale entry not reported as removable:\n%s", stderr.String())
	}
}

func TestWriteBaselineRoundTrip(t *testing.T) {
	root := writeTestModule(t, map[string]string{
		"internal/fleetsim/clock.go": baselineClockProgram,
	})
	base := filepath.Join(root, ".ssdlint-baseline")
	var stdout, stderr bytes.Buffer
	code := Run(Options{Dir: root, Patterns: []string{"./..."}, BaselinePath: base,
		WriteBaseline: true, Stdout: &stdout, Stderr: &stderr})
	if code != ExitClean {
		t.Fatalf("write-baseline exit = %d, want clean; stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatalf("baseline not written: %v", err)
	}
	if !strings.Contains(string(data), "nondeterminism\tinternal/fleetsim/clock.go\t") {
		t.Errorf("baseline content unexpected:\n%s", data)
	}
	// A rerun against the freshly written baseline is clean.
	stdout.Reset()
	stderr.Reset()
	code = Run(Options{Dir: root, Patterns: []string{"./..."}, BaselinePath: base,
		Stdout: &stdout, Stderr: &stderr})
	if code != ExitClean {
		t.Fatalf("rerun exit = %d, want clean\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
}

func TestMalformedBaselineIsAnError(t *testing.T) {
	root := writeTestModule(t, map[string]string{
		"internal/report/ok.go": "package report\n\nfunc OK() int { return 1 }\n",
	})
	base := filepath.Join(root, ".ssdlint-baseline")
	if err := os.WriteFile(base, []byte("not a valid entry line\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := Run(Options{Dir: root, Patterns: []string{"./..."}, BaselinePath: base,
		Stdout: &stdout, Stderr: &stderr})
	if code != ExitError {
		t.Fatalf("exit = %d, want %d for malformed baseline", code, ExitError)
	}
}

func TestMissingBaselineFileIsEmpty(t *testing.T) {
	root := writeTestModule(t, map[string]string{
		"internal/report/ok.go": "package report\n\nfunc OK() int { return 1 }\n",
	})
	var stdout, stderr bytes.Buffer
	code := Run(Options{Dir: root, Patterns: []string{"./..."},
		BaselinePath: filepath.Join(root, "no-such-file"),
		Stdout:       &stdout, Stderr: &stderr})
	if code != ExitClean {
		t.Fatalf("exit = %d, want clean with a missing baseline file\nstderr: %s",
			code, stderr.String())
	}
}
