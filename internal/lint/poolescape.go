package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// PoolEscapeAnalyzer enforces the DESIGN §15 pooled-scratch ownership
// rule: a value obtained from sync.Pool.Get (and everything
// aliasing it) belongs to exactly one owner between Get and the paired
// Put. It must not be stored into a struct field or package variable
// outside itself, sent on a channel, captured by a goroutine, or
// returned; and it must not be touched after the Put. The check is a
// forward taint analysis over the per-function CFG: Get taints, alias-
// producing expressions propagate, Put ends ownership.
//
// Only functions that both Get and Put are analyzed — accessor helpers
// that hand a pooled value to a caller (and the callers that receive
// it) are the caller's contract, not a mechanical one, and call results
// are deliberately never tainted so returning an error computed from
// pooled bytes stays legal.
func PoolEscapeAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "poolescape",
		Doc: "flags sync.Pool values escaping their Get/Put window (field store, " +
			"package var, channel send, return, goroutine capture) and uses after Put, " +
			"via CFG taint tracking in functions that both Get and Put",
		InScope: scopeAll("poolescape"),
		Check:   checkPoolEscape,
	}
}

// putFact marks "obj has been Put" in the dataflow facts; the taint
// fact for the same object is the object itself.
type putFact struct{ obj types.Object }

func checkPoolEscape(p *Package, inScope func(*ast.File) bool, report func(pos token.Pos, msg string)) {
	for _, file := range p.Files {
		if !inScope(file) {
			continue
		}
		for _, body := range funcBodies(file) {
			if hasPoolPair(p, body) {
				checkPoolEscapeBody(p, body, report)
			}
		}
	}
}

// poolCall recognizes X.Get()/X.Put(v) on a sync.Pool receiver.
func poolCall(p *Package, call *ast.CallExpr) (kind string) {
	fn, ok := useOf(p.Info, call.Fun).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || receiverTypeName(fn) != "Pool" {
		return ""
	}
	if n := fn.Name(); n == "Get" || n == "Put" {
		return n
	}
	return ""
}

// hasPoolPair reports whether a body (literals excluded) contains both
// a pool Get and a pool Put.
func hasPoolPair(p *Package, body *ast.BlockStmt) bool {
	var get, put bool
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != ast.Node(body) {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			switch poolCall(p, call) {
			case "Get":
				get = true
			case "Put":
				put = true
			}
		}
		return !(get && put)
	})
	return get && put
}

// mayAlias reports whether a value of type t can alias pooled memory:
// pointers, slices, maps, channels, funcs, interfaces, and aggregates
// containing them. Basic values (including strings, which conversions
// copy) cannot, so a float pulled out of a pooled slice is clean.
func mayAlias(t types.Type) bool {
	return mayAliasSeen(t, map[types.Type]bool{})
}

func mayAliasSeen(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if mayAliasSeen(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return mayAliasSeen(u.Elem(), seen)
	}
	return false
}

// exprTainted reports whether evaluating e yields a value aliasing
// pooled memory, given the current taint facts. Call results are never
// tainted (except the Get itself and the append builtin, which aliases
// its first argument).
func exprTainted(p *Package, e ast.Expr, facts factSet) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := p.Info.Uses[e]
		if obj == nil {
			obj = p.Info.Defs[e]
		}
		return obj != nil && facts[obj]
	case *ast.ParenExpr:
		return exprTainted(p, e.X, facts)
	case *ast.TypeAssertExpr:
		return exprTainted(p, e.X, facts)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return exprTainted(p, e.X, facts)
		}
		return false
	case *ast.StarExpr:
		return exprTainted(p, e.X, facts) && mayAliasExprType(p, e)
	case *ast.SelectorExpr:
		return exprTainted(p, e.X, facts) && mayAliasExprType(p, e)
	case *ast.IndexExpr:
		return exprTainted(p, e.X, facts) && mayAliasExprType(p, e)
	case *ast.SliceExpr:
		return exprTainted(p, e.X, facts)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if exprTainted(p, elt, facts) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		if poolCall(p, e) == "Get" {
			return true
		}
		if isBuiltinAppend(p.Info, e) && len(e.Args) > 0 {
			for _, a := range e.Args {
				if exprTainted(p, a, facts) {
					return true
				}
			}
			return false
		}
		// A conversion keeps the alias for reference types (named slice
		// types and the like); string conversions copy and basic results
		// fail mayAlias anyway.
		if tv, ok := p.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return exprTainted(p, e.Args[0], facts) && mayAliasExprType(p, e)
		}
		return false
	}
	return false
}

func mayAliasExprType(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && mayAlias(tv.Type)
}

// lhsRootObj resolves the object at the root of an assignment target.
func lhsRootObj(p *Package, e ast.Expr) types.Object {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			if obj := p.Info.Defs[t]; obj != nil {
				return obj
			}
			return p.Info.Uses[t]
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.SliceExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// assignPairs normalizes an assignment into (lhs, rhs) pairs; a
// multi-value rhs (call, type assert, receive) pairs only its first
// lhs, since call results and receives are never tainted and a type
// assert's taint follows its operand.
func assignPairs(a *ast.AssignStmt) [][2]ast.Expr {
	var pairs [][2]ast.Expr
	if len(a.Lhs) == len(a.Rhs) {
		for i := range a.Lhs {
			pairs = append(pairs, [2]ast.Expr{a.Lhs[i], a.Rhs[i]})
		}
	} else if len(a.Rhs) == 1 {
		pairs = append(pairs, [2]ast.Expr{a.Lhs[0], a.Rhs[0]})
	}
	return pairs
}

func checkPoolEscapeBody(p *Package, body *ast.BlockStmt, report func(pos token.Pos, msg string)) {
	g := buildCFG(body)

	// applyNode folds one node's effect on the facts (pure gen/kill).
	applyNode := func(node cfgNode, facts factSet) factSet {
		out := facts.clone()
		switch s := node.stmt.(type) {
		case *ast.AssignStmt:
			for _, pair := range assignPairs(s) {
				lhs, rhs := pair[0], pair[1]
				id, isIdent := lhs.(*ast.Ident)
				if !isIdent {
					continue
				}
				obj := p.Info.Defs[id]
				if obj == nil {
					obj = p.Info.Uses[id]
				}
				if obj == nil {
					continue
				}
				if exprTainted(p, rhs, out) && mayAlias(obj.Type()) {
					out[obj] = true
					delete(out, any(putFact{obj}))
				} else {
					// Strong update: the local now holds something else.
					delete(out, any(obj))
					delete(out, any(putFact{obj}))
				}
			}
		case *ast.RangeStmt:
			if exprTainted(p, s.X, out) {
				for _, v := range []ast.Expr{s.Key, s.Value} {
					id, ok := v.(*ast.Ident)
					if !ok {
						continue
					}
					if obj := p.Info.Defs[id]; obj != nil && mayAlias(obj.Type()) {
						out[obj] = true
					}
				}
			}
		}
		// Put ends ownership wherever it appears in the statement —
		// except under defer, which runs at exit.
		if !deferredNode(node) {
			walkScan(node.scan, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok || poolCall(p, call) != "Put" || len(call.Args) != 1 {
					return true
				}
				if obj := lhsRootObj(p, call.Args[0]); obj != nil && out[obj] {
					delete(out, any(obj))
					out[putFact{obj}] = true
				}
				return true
			})
		}
		return out
	}

	ins := g.forward(factSet{}, func(n int, in factSet) factSet {
		return applyNode(g.nodes[n], in)
	})

	for i, node := range g.nodes {
		if ins[i] == nil {
			continue
		}
		reportPoolEscapeNode(p, node, ins[i], report)
	}
}

func reportPoolEscapeNode(p *Package, node cfgNode, in factSet, report func(pos token.Pos, msg string)) {
	// Use-after-Put: any read of an object whose ownership ended.
	// Assignment targets are writes that re-home the variable, not
	// uses, so their root identifiers are skipped.
	writes := map[*ast.Ident]bool{}
	if a, ok := node.stmt.(*ast.AssignStmt); ok {
		for _, lhs := range a.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				writes[id] = true
			}
		}
	}
	walkScan(node.scan, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok || writes[id] {
			return true
		}
		if obj := p.Info.Uses[id]; obj != nil && in[putFact{obj}] {
			report(id.Pos(), fmt.Sprintf(
				"pooled value %q used after Put; ownership ended at the Put and the pool may have handed it to another goroutine", id.Name))
		}
		return true
	})

	switch s := node.stmt.(type) {
	case *ast.AssignStmt:
		for _, pair := range assignPairs(s) {
			lhs, rhs := pair[0], pair[1]
			if !exprTainted(p, rhs, in) {
				continue
			}
			switch l := lhs.(type) {
			case *ast.Ident:
				obj := p.Info.Uses[l]
				if obj == nil {
					obj = p.Info.Defs[l]
				}
				if obj != nil && obj.Parent() == p.Pkg.Scope() {
					report(s.Pos(), fmt.Sprintf(
						"pooled value stored in package variable %q; it outlives the Get/Put window", l.Name))
				}
			default:
				root := lhsRootObj(p, lhs)
				if root == nil || !in[root] {
					report(s.Pos(), fmt.Sprintf(
						"pooled value stored into %s, which is not part of the pooled object and outlives the Get/Put window",
						exprString(p.Fset, lhs)))
				}
			}
		}
	case *ast.SendStmt:
		if exprTainted(p, s.Value, in) {
			report(s.Pos(), "pooled value sent on a channel; the receiver would share it past the Put")
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if exprTainted(p, r, in) {
				report(r.Pos(), "pooled value returned from the function that owns its Get/Put window")
			}
		}
	case *ast.GoStmt:
		escaped := false
		for _, arg := range s.Call.Args {
			if exprTainted(p, arg, in) {
				escaped = true
			}
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok && !escaped {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := p.Info.Uses[id]; obj != nil && in[obj] {
						escaped = true
						return false
					}
				}
				return !escaped
			})
		}
		if escaped {
			report(s.Pos(), "pooled value captured by a goroutine; concurrent use breaks the single-owner rule")
		}
	}
}
