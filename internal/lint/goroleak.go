package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// longRunningPkgs is the goroutine-lifecycle scope: the daemon tiers
// whose processes live for days. A goroutine launched there without a
// shutdown signal outlives Close, keeps file handles and sockets
// pinned, and turns clean restarts into leaks.
var longRunningPkgs = []string{
	"internal/serve",
	"internal/wal",
	"internal/cluster",
	"internal/learn",
}

// GoroLeakAnalyzer flags `go` statements in the long-running packages
// whose function shows no lifecycle signal: no select on a
// context/done channel, no channel-close termination (comma-ok receive
// or range over a channel), and no WaitGroup registration visible at
// the launch site. Targets the analyzer cannot resolve to a body —
// calls through function values from other scopes or interface
// methods — are skipped rather than guessed at.
func GoroLeakAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "goroleak",
		Doc: "flags goroutines in internal/{serve,wal,cluster,learn} with no lifecycle " +
			"signal: no context/done-channel select, no channel-close termination, and " +
			"no WaitGroup visible at the launch site",
		InScope: scopePackages("goroleak", longRunningPkgs, nil),
		Check:   checkGoroLeak,
	}
}

func checkGoroLeak(p *Package, inScope func(*ast.File) bool, report func(pos token.Pos, msg string)) {
	sums := p.Summaries()
	for _, file := range p.Files {
		if !inScope(file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			launchHasAdd := containsWaitGroupCall(p, fd.Body, "Add")
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				body, resolved := goTargetBody(p, sums, fd.Body, g)
				if !resolved {
					return true
				}
				if hasLifecycleSignal(p, body) {
					return true
				}
				if launchHasAdd && containsWaitGroupCall(p, body, "Done") {
					return true
				}
				report(g.Pos(), "goroutine has no lifecycle signal: no context/done-channel select, "+
					"no channel-close termination, and no WaitGroup registration visible at the launch site")
				return true
			})
		}
	}
}

// goTargetBody resolves the body the go statement will run: a literal,
// a module function or method, or a local variable bound to a literal
// in the launching function. resolved is false when the target's body
// is out of reach (function values from elsewhere, stdlib, interface
// methods).
func goTargetBody(p *Package, sums *SummaryCache, launchBody *ast.BlockStmt, g *ast.GoStmt) (*ast.BlockStmt, bool) {
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body, true
	case *ast.Ident:
		if obj := p.Info.Uses[fun]; obj != nil {
			if fn, ok := obj.(*types.Func); ok {
				if _, decl := sums.declOf(fn); decl != nil && decl.Body != nil {
					return decl.Body, true
				}
				return nil, false
			}
			// A local closure variable: find the literal it was bound to.
			if lit := boundFuncLit(p, launchBody, obj); lit != nil {
				return lit.Body, true
			}
		}
		return nil, false
	case *ast.SelectorExpr:
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			if _, decl := sums.declOf(fn); decl != nil && decl.Body != nil {
				return decl.Body, true
			}
		}
		return nil, false
	}
	return nil, false
}

// boundFuncLit finds the function literal assigned to obj inside the
// launching function (fire := func() {...}; go fire()).
func boundFuncLit(p *Package, body *ast.BlockStmt, obj types.Object) *ast.FuncLit {
	var lit *ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit != nil {
			return false
		}
		a, ok := n.(*ast.AssignStmt)
		if !ok || len(a.Lhs) != len(a.Rhs) {
			return true
		}
		for i := range a.Lhs {
			id, ok := a.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			def := p.Info.Defs[id]
			if def == nil {
				def = p.Info.Uses[id]
			}
			if def != obj {
				continue
			}
			if l, ok := a.Rhs[i].(*ast.FuncLit); ok {
				lit = l
			}
		}
		return true
	})
	return lit
}

// hasLifecycleSignal scans a goroutine body for a shutdown mechanism:
// a select with a receive case that returns (the ctx.Done()/stop-chan
// pattern), a direct ctx.Done()/ctx.Err() consultation, a comma-ok
// channel receive (close-to-terminate), or a range over a channel.
func hasLifecycleSignal(p *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			for _, cs := range n.Body.List {
				cc, ok := cs.(*ast.CommClause)
				if !ok || cc.Comm == nil || !commIsReceive(cc.Comm) {
					continue
				}
				if bodyReturns(cc.Body) {
					found = true
					return false
				}
			}
		case *ast.CallExpr:
			if fn, ok := useOf(p.Info, n.Fun).(*types.Func); ok && fn.Pkg() != nil &&
				fn.Pkg().Path() == "context" && (fn.Name() == "Done" || fn.Name() == "Err") {
				found = true
				return false
			}
		case *ast.AssignStmt:
			// v, ok := <-ch: termination is the sender closing the channel.
			if len(n.Lhs) == 2 && len(n.Rhs) == 1 {
				if u, ok := n.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					found = true
					return false
				}
			}
		case *ast.RangeStmt:
			if isChanExpr(p.Info, n.X) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// commIsReceive reports whether a select comm clause is a receive.
func commIsReceive(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		u, ok := s.X.(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			u, ok := s.Rhs[0].(*ast.UnaryExpr)
			return ok && u.Op == token.ARROW
		}
	}
	return false
}

// bodyReturns reports whether a statement list contains a return or a
// break out of the goroutine's loop — the case body actually stops.
func bodyReturns(stmts []ast.Stmt) bool {
	found := false
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				found = true
				return false
			case *ast.BranchStmt:
				if n.(*ast.BranchStmt).Tok == token.BREAK {
					found = true
					return false
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// containsWaitGroupCall reports whether a body (literals included —
// the registration may sit inside the launched literal) calls the
// named sync.WaitGroup method.
func containsWaitGroupCall(p *Package, body *ast.BlockStmt, method string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn, ok := useOf(p.Info, call.Fun).(*types.Func); ok && fn.Pkg() != nil &&
			fn.Pkg().Path() == "sync" && receiverTypeName(fn) == "WaitGroup" && fn.Name() == method {
			found = true
			return false
		}
		return true
	})
	return found
}
