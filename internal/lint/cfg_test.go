package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses src (a complete file) and returns the body of its
// first function declaration.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return fd.Body
		}
	}
	t.Fatal("no function in source")
	return nil
}

// genKillTransfer is a toy transfer over calls named gen/kill: gen sets
// the single fact, kill removes it. It exercises the same clone/union
// machinery the real analyzers use.
func genKillTransfer(g *cfg) func(int, factSet) factSet {
	return func(n int, in factSet) factSet {
		out := in.clone()
		walkScan(g.nodes[n].scan, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok {
				switch id.Name {
				case "gen":
					out["f"] = true
				case "kill":
					delete(out, "f")
				}
			}
			return true
		})
		return out
	}
}

// nodeCalling finds the node whose scan contains a call to name.
func nodeCalling(g *cfg, name string) int {
	for i := range g.nodes {
		found := false
		walkScan(g.nodes[i].scan, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
					found = true
				}
			}
			return true
		})
		if found {
			return i
		}
	}
	return -1
}

func runGenKill(t *testing.T, src, probe string) (factSet, *cfg) {
	t.Helper()
	g := buildCFG(parseBody(t, src))
	ins := g.forward(factSet{}, genKillTransfer(g))
	n := nodeCalling(g, probe)
	if n < 0 {
		t.Fatalf("no node calls %s", probe)
	}
	return ins[n], g
}

func TestCFGFactReachesStraightLine(t *testing.T) {
	in, _ := runGenKill(t, `package p
func f() { gen(); probe() }
`, "probe")
	if !in["f"] {
		t.Fatalf("fact did not flow to probe: %v", in)
	}
}

func TestCFGKillOnAllPathsClearsFact(t *testing.T) {
	in, _ := runGenKill(t, `package p
func f(c bool) {
	gen()
	if c {
		kill()
	} else {
		kill()
	}
	probe()
}
`, "probe")
	if in["f"] {
		t.Fatalf("fact killed on both branches still present at probe: %v", in)
	}
}

func TestCFGKillOnOnePathKeepsFact(t *testing.T) {
	// May-analysis: the fact survives the branch that does not kill it,
	// so the join still sees it.
	in, _ := runGenKill(t, `package p
func f(c bool) {
	gen()
	if c {
		kill()
	}
	probe()
}
`, "probe")
	if !in["f"] {
		t.Fatalf("fact should survive the no-kill branch: %v", in)
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	// A fact generated in the loop body must reach the header on the
	// back edge — the fixpoint iterates until that union stabilizes.
	in, _ := runGenKill(t, `package p
func f(xs []int) {
	for probe(); cond(); {
		gen()
	}
}
`, "probe")
	if !in["f"] {
		t.Fatalf("loop back edge did not carry the fact to the header: %v", in)
	}
}

func TestCFGEarlyReleasePath(t *testing.T) {
	// The lockheld shape: kill + use on one path, kill after the join on
	// the other. The in-branch probe must not see the fact.
	in, _ := runGenKill(t, `package p
func f(c bool) {
	gen()
	if c {
		kill()
		probe()
		return
	}
	kill()
}
`, "probe")
	if in["f"] {
		t.Fatalf("fact killed earlier on the same path still present: %v", in)
	}
}

func TestCFGUnreachableAfterReturn(t *testing.T) {
	src := `package p
func f() {
	gen()
	return
	probe()
}
`
	g := buildCFG(parseBody(t, src))
	ins := g.forward(factSet{}, genKillTransfer(g))
	n := nodeCalling(g, "probe")
	if n < 0 {
		t.Fatal("no probe node")
	}
	if ins[n] != nil {
		t.Fatalf("statement after return should be unreachable (nil in-fact), got %v", ins[n])
	}
}

func TestCFGContinueSkipsRest(t *testing.T) {
	// gen() sits after an unconditional continue: it never executes, so
	// the fact never reaches the header or the probe after the loop.
	in, _ := runGenKill(t, `package p
func f(xs []int) {
	for range xs {
		continue
		gen()
	}
	probe()
}
`, "probe")
	if in["f"] {
		t.Fatalf("fact from statement after continue leaked out: %v", in)
	}
}

func TestCFGDefersRecorded(t *testing.T) {
	src := `package p
func f() {
	defer a()
	if cond() {
		defer b()
	}
	probe()
}
`
	g := buildCFG(parseBody(t, src))
	if len(g.defers) != 2 {
		t.Fatalf("defers = %d, want 2", len(g.defers))
	}
	first, ok := g.defers[0].Call.Fun.(*ast.Ident)
	if !ok || first.Name != "a" {
		t.Fatalf("defers not in source order: first is %v", g.defers[0].Call.Fun)
	}
}

func TestCFGSwitchBranches(t *testing.T) {
	// kill in only one case: may-analysis keeps the fact at the probe.
	in, _ := runGenKill(t, `package p
func f(n int) {
	gen()
	switch n {
	case 1:
		kill()
	case 2:
	}
	probe()
}
`, "probe")
	if !in["f"] {
		t.Fatalf("fact should survive the non-killing case: %v", in)
	}
}

func TestCFGGotoLoop(t *testing.T) {
	// A goto-formed loop must still converge and carry facts backward.
	in, _ := runGenKill(t, `package p
func f() {
top:
	probe()
	gen()
	goto top
}
`, "probe")
	if !in["f"] {
		t.Fatalf("goto back edge did not carry the fact: %v", in)
	}
}
