package lint

import (
	"bytes"
	"fmt"
	"os"
	"sort"
	"strings"
)

// A Baseline is the committed set of accepted findings. Entries are
// keyed by (analyzer, file, message) — deliberately without a line
// number, so unrelated edits that shift lines do not invalidate the
// baseline. A finding matching an entry is not "new" and does not fail
// the run; an entry matching no current finding is stale and is
// reported as removable.
type Baseline struct {
	entries []baselineEntry
}

type baselineEntry struct {
	Analyzer, File, Message string
}

func (e baselineEntry) String() string {
	return e.Analyzer + "\t" + e.File + "\t" + e.Message
}

// LoadBaseline reads a baseline file: one tab-separated
// analyzer/file/message entry per line, with blank lines and #-comment
// lines ignored. A missing file is an empty baseline, so a repo without
// accepted findings needs no file at all.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	b := &Baseline{}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if strings.TrimSpace(line) == "" || strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		parts := strings.SplitN(line, "\t", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("%s:%d: malformed baseline entry (want analyzer<TAB>file<TAB>message): %q",
				path, i+1, line)
		}
		b.entries = append(b.entries, baselineEntry{Analyzer: parts[0], File: parts[1], Message: parts[2]})
	}
	return b, nil
}

// Filter splits findings into the fresh ones (not covered by the
// baseline — these fail the run) and reports which baseline entries are
// stale: nothing in the tree produces them anymore, so they can be
// deleted from the file.
func (b *Baseline) Filter(findings []Finding) (fresh []Finding, stale []string) {
	matched := make([]bool, len(b.entries))
	for _, f := range findings {
		hit := false
		for i, e := range b.entries {
			if e.Analyzer == f.Analyzer && e.File == f.File && e.Message == f.Message {
				matched[i] = true
				hit = true
			}
		}
		if !hit {
			fresh = append(fresh, f)
		}
	}
	for i, e := range b.entries {
		if !matched[i] {
			stale = append(stale, e.String())
		}
	}
	return fresh, stale
}

// FormatBaseline renders findings as baseline file content, sorted and
// deduplicated so regenerating the file is itself deterministic.
func FormatBaseline(findings []Finding) []byte {
	seen := map[string]bool{}
	var lines []string
	for _, f := range findings {
		e := baselineEntry{Analyzer: f.Analyzer, File: f.File, Message: f.Message}
		if s := e.String(); !seen[s] {
			seen[s] = true
			lines = append(lines, s)
		}
	}
	sort.Strings(lines)
	var buf bytes.Buffer
	buf.WriteString("# ssdlint baseline: accepted findings that do not fail CI.\n")
	buf.WriteString("# One entry per line: analyzer<TAB>file<TAB>message.\n")
	buf.WriteString("# Regenerate with: go run ./cmd/ssdlint -baseline <this file> -write-baseline ./...\n")
	for _, l := range lines {
		buf.WriteString(l)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}
