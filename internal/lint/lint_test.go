package lint

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// sharedLoader caches type-checked stdlib packages across tests; the
// fixture packages themselves are tiny.
var sharedLoader *Loader

func loaderForModule(t *testing.T) *Loader {
	t.Helper()
	if sharedLoader == nil {
		root, module, err := FindModule(".")
		if err != nil {
			t.Fatalf("FindModule: %v", err)
		}
		sharedLoader = NewLoader(root, module)
	}
	return sharedLoader
}

var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// parseWants maps line number -> expected message substrings for every
// fixture file in dir.
func parseWants(t *testing.T, dir string) map[int][]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	wants := map[int][]string{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("reading fixture: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				wants[i+1] = append(wants[i+1], m[1])
			}
		}
	}
	return wants
}

// TestAnalyzerFixtures runs every analyzer over its testdata package
// and checks findings against the inline want annotations: each
// annotated line must produce a matching finding, unannotated lines
// must stay clean, and //ssdlint:allow lines must be suppressed.
func TestAnalyzerFixtures(t *testing.T) {
	loader := loaderForModule(t)
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for _, a := range Analyzers() {
		t.Run(a.Name, func(t *testing.T) {
			path := loader.Module + "/internal/lint/testdata/" + a.Name
			p, err := loader.Load(path)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			raw := run(p, []*Analyzer{a}, loader.Rel)
			allows, misuse := collectAllows(p, known, loader.Rel)
			if len(misuse) != 0 {
				t.Fatalf("fixture has malformed allow directives: %v", misuse)
			}
			var got []Finding
			for _, f := range raw {
				if !suppressed(f, allows) {
					got = append(got, f)
				}
			}
			wants := parseWants(t, p.Dir)
			if len(wants) == 0 {
				t.Fatalf("fixture for %s has no want annotations", a.Name)
			}
			matched := map[int]int{}
			for _, f := range got {
				subs, ok := wants[f.Line]
				if !ok {
					t.Errorf("unexpected finding on unannotated line: %s", f)
					continue
				}
				found := false
				for _, sub := range subs {
					if strings.Contains(f.Message, sub) {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("finding on line %d does not match wants %q: %s", f.Line, subs, f)
				}
				matched[f.Line]++
			}
			for line, subs := range wants {
				if matched[line] < len(subs) {
					t.Errorf("line %d: want %d finding(s) matching %q, got %d",
						line, len(subs), subs, matched[line])
				}
			}
		})
	}
}

// TestFixturesFailViaCLI proves the acceptance contract: pointing the
// driver at each analyzer's fixture package exits nonzero, with the
// expected analyzer named in the output.
func TestFixturesFailViaCLI(t *testing.T) {
	loader := loaderForModule(t)
	for _, a := range Analyzers() {
		t.Run(a.Name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := Run(Options{
				Dir:      loader.Root,
				Patterns: []string{"./internal/lint/testdata/" + a.Name},
				Stdout:   &stdout,
				Stderr:   &stderr,
			})
			if code != ExitFindings {
				t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					code, ExitFindings, stdout.String(), stderr.String())
			}
			if !strings.Contains(stdout.String(), a.Name+":") {
				t.Fatalf("stdout does not attribute findings to %s:\n%s", a.Name, stdout.String())
			}
		})
	}
}

// TestJSONOutput checks the -json rendering is a parseable array with
// module-relative paths.
func TestJSONOutput(t *testing.T) {
	loader := loaderForModule(t)
	var stdout, stderr bytes.Buffer
	code := Run(Options{
		Dir:      loader.Root,
		Patterns: []string{"./internal/lint/testdata/clockpath"},
		JSON:     true,
		Stdout:   &stdout,
		Stderr:   &stderr,
	})
	if code != ExitFindings {
		t.Fatalf("exit = %d, want %d; stderr: %s", code, ExitFindings, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		`"analyzer": "clockpath"`,
		`"file": "internal/lint/testdata/clockpath/fixture.go"`,
		`"line":`,
		`"message":`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON output missing %s:\n%s", want, out)
		}
	}
}

// writeTestModule materializes a throwaway module so suppression,
// scoping, and baseline mechanics can be tested against controlled
// sources. files maps module-relative paths to contents.
func writeTestModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const clockProgram = `package fleetsim

import "time"

func Stamp() time.Time { return time.Now() }
`

func TestScopingLimitsAnalyzers(t *testing.T) {
	// The same wall-clock read is a finding inside the determinism
	// scope and silence outside it.
	for _, tc := range []struct {
		rel  string
		want int
	}{
		{"internal/fleetsim/clock.go", ExitFindings},
		{"internal/report/clock.go", ExitClean},
	} {
		root := writeTestModule(t, map[string]string{tc.rel: strings.Replace(clockProgram, "fleetsim", filepath.Base(filepath.Dir(tc.rel)), 1)})
		var stdout, stderr bytes.Buffer
		code := Run(Options{Dir: root, Patterns: []string{"./..."}, Stdout: &stdout, Stderr: &stderr})
		if code != tc.want {
			t.Errorf("%s: exit = %d, want %d\nstdout: %s\nstderr: %s",
				tc.rel, code, tc.want, stdout.String(), stderr.String())
		}
	}
}

func TestLoadgenScopeIsFileScoped(t *testing.T) {
	// internal/loadgen is only under the nondeterminism contract for
	// schedule.go; run.go measures real latencies and may read time.
	root := writeTestModule(t, map[string]string{
		"internal/loadgen/schedule.go": "package loadgen\n\nimport \"time\"\n\nfunc A() time.Time { return time.Now() }\n",
		"internal/loadgen/run.go":      "package loadgen\n\nimport \"time\"\n\nfunc B() time.Time { return time.Now() }\n",
	})
	var stdout, stderr bytes.Buffer
	code := Run(Options{Dir: root, Patterns: []string{"./..."}, Stdout: &stdout, Stderr: &stderr})
	if code != ExitFindings {
		t.Fatalf("exit = %d, want findings; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "schedule.go") {
		t.Errorf("schedule.go violation not reported:\n%s", out)
	}
	if strings.Contains(out, "run.go") {
		t.Errorf("run.go flagged despite being outside the schedule-construction scope:\n%s", out)
	}
}

func TestMainModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module lint typechecks net/http from source; skipped in -short")
	}
	loader := loaderForModule(t)
	var stdout, stderr bytes.Buffer
	code := Run(Options{
		Dir:      loader.Root,
		Patterns: []string{"./..."},
		Stdout:   &stdout,
		Stderr:   &stderr,
	})
	if code != ExitClean {
		t.Fatalf("ssdlint ./... = exit %d, want clean\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
}

func fmtFindings(fs []Finding) string {
	var sb strings.Builder
	for _, f := range fs {
		fmt.Fprintln(&sb, f)
	}
	return sb.String()
}
