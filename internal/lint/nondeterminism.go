package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// randConstructors are the math/rand(/v2) package-level functions that
// build explicit sources or generators instead of drawing from the
// global source. Calling them with a fixed or key-derived seed is the
// legal pattern; everything else at package level uses the global
// source and is banned in deterministic packages.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true,
	"NewChaCha8": true, "NewZipf": true,
}

// NondeterminismAnalyzer flags wall-clock reads (time.Now, time.Since),
// global math/rand draws (package-level rand.* like rand.Int or
// rand.Shuffle), and rand sources seeded from the clock inside the
// packages under the determinism contract. Those packages must produce
// bit-identical outputs for a given seed at any worker count; one stray
// time.Now in a hot path silently breaks that until a golden test
// happens to notice.
func NondeterminismAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "nondeterminism",
		Doc: "flags time.Now, global math/rand draws, and clock-seeded rand sources " +
			"in the deterministic packages (fleetsim, dataset, ml, expgrid, experiments, " +
			"loadgen schedule construction)",
		InScope: scopePackages("nondeterminism", deterministicPkgs, deterministicFiles),
		Check:   checkNondeterminism,
	}
}

// timeFunc returns "Now" or "Since" when obj is that function of
// package time, else "".
func timeFunc(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return ""
	}
	if n := fn.Name(); n == "Now" || n == "Since" {
		return n
	}
	return ""
}

// globalRandFunc returns the function name when obj is a package-level
// function of math/rand or math/rand/v2 (not a method on *rand.Rand),
// else "".
func globalRandFunc(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return ""
	}
	return fn.Name()
}

// useOf resolves the object an identifier or selector refers to.
func useOf(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

func checkNondeterminism(p *Package, inScope func(*ast.File) bool, report func(pos token.Pos, msg string)) {
	for _, file := range p.Files {
		if !inScope(file) {
			continue
		}
		// handled marks nodes a more specific finding (or an enclosing
		// selector) already covered, so one time.Now yields exactly one
		// finding. The walk is pre-order: a rand.NewSource(time.Now())
		// call is seen before the time.Now inside it, and a selector
		// before its Sel identifier.
		handled := map[ast.Node]bool{}
		cover := func(n ast.Node) {
			handled[n] = true
			if sel, ok := n.(*ast.SelectorExpr); ok {
				handled[sel.Sel] = true
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				obj := useOf(p.Info, n.Fun)
				if name := globalRandFunc(obj); name != "" && randConstructors[name] {
					for _, arg := range n.Args {
						ast.Inspect(arg, func(m ast.Node) bool {
							e, ok := m.(ast.Expr)
							if !ok || timeFunc(useOf(p.Info, e)) == "" {
								return true
							}
							if !handled[m] {
								cover(m)
								report(n.Pos(), fmt.Sprintf(
									"rand.%s seeded from the wall clock; derive the seed from the experiment key instead",
									name))
							}
							return false
						})
					}
				}
			case *ast.SelectorExpr:
				if handled[n] {
					cover(n)
					return true
				}
				obj := p.Info.Uses[n.Sel]
				if name := timeFunc(obj); name != "" {
					cover(n)
					report(n.Pos(), fmt.Sprintf(
						"wall clock read (time.%s) in a deterministic package; only injected clocks are allowed",
						name))
					return true
				}
				if name := globalRandFunc(obj); name != "" && !randConstructors[name] {
					cover(n)
					report(n.Pos(), fmt.Sprintf(
						"global math/rand source used (rand.%s) in a deterministic package; draw from a key-seeded rand.New(...) instead",
						name))
				}
			case *ast.Ident:
				// Dot-imported references reach these functions without
				// a selector; Uses still resolves them.
				if handled[n] {
					return true
				}
				if name := timeFunc(p.Info.Uses[n]); name != "" {
					report(n.Pos(), fmt.Sprintf(
						"wall clock read (time.%s) in a deterministic package; only injected clocks are allowed",
						name))
				}
			}
			return true
		})
	}
}
