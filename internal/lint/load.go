package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path. The linter resolves this
// module's own import paths itself — the stdlib source importer only
// knows GOROOT — so the module identity anchors everything.
func FindModule(dir string) (root, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if name, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(name), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Loader parses and type-checks packages of one module. Imports inside
// the module are resolved against the module root and analyzed from
// source; everything else (the standard library) is delegated to the
// stdlib source importer, keeping go.mod at zero requires.
type Loader struct {
	Fset   *token.FileSet
	Root   string
	Module string

	// Summaries is the loader-wide call-effect summary cache shared by
	// the dataflow analyzers, memoized with the same lifetime as the
	// package cache so a function is summarized at most once per run.
	Summaries *SummaryCache

	// Loads counts Load calls; CacheHits counts the ones answered from
	// the memo. Re-entrant loads triggered by summary computation show
	// up here, which is what the loader accounting tests assert on.
	Loads, CacheHits int

	std   types.ImporterFrom
	cache map[string]*loadEntry
}

type loadEntry struct {
	pkg *Package
	err error
}

// NewLoader returns a loader for the module rooted at root.
func NewLoader(root, module string) *Loader {
	fset := token.NewFileSet()
	l := &Loader{
		Fset:   fset,
		Root:   root,
		Module: module,
		std:    importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		cache:  map[string]*loadEntry{},
	}
	l.Summaries = newSummaryCache(l)
	return l
}

// Dir maps an import path inside the module to its directory.
func (l *Loader) Dir(importPath string) string {
	return filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(importPath, l.Module)))
}

// inModule reports whether path belongs to this module.
func (l *Loader) inModule(path string) bool {
	return path == l.Module || strings.HasPrefix(path, l.Module+"/")
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom for the hybrid resolution
// described on Loader.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if !l.inModule(path) {
		return l.std.ImportFrom(path, srcDir, mode)
	}
	p, err := l.Load(path)
	if err != nil {
		return nil, err
	}
	return p.Pkg, nil
}

// Load parses and type-checks one module package (memoized). Test files
// are excluded: the determinism and durability contracts bind the code
// that ships, and test-only randomness is the tests' own business.
func (l *Loader) Load(importPath string) (*Package, error) {
	l.Loads++
	if e, ok := l.cache[importPath]; ok {
		l.CacheHits++
		return e.pkg, e.err
	}
	// Seed the cache entry first so import cycles fail fast instead of
	// recursing forever.
	entry := &loadEntry{err: fmt.Errorf("lint: import cycle through %s", importPath)}
	l.cache[importPath] = entry
	pkg, err := l.loadUncached(importPath)
	entry.pkg, entry.err = pkg, err
	return pkg, err
}

func (l *Loader) loadUncached(importPath string) (*Package, error) {
	dir := l.Dir(importPath)
	names, err := goSourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go source files in %s", dir)
	}
	var files []*ast.File
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, fmt.Errorf("lint: %s holds two packages: %s and %s", dir, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return &Package{
		Path:   importPath,
		Dir:    dir,
		Fset:   l.Fset,
		Files:  files,
		Pkg:    tpkg,
		Info:   info,
		loader: l,
	}, nil
}

// goSourceFiles lists the non-test Go files of dir that the default
// build context would compile, sorted so findings come out in a stable
// order.
func goSourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	ctxt := build.Default
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if ok, _ := ctxt.MatchFile(dir, name); !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// ExpandPatterns resolves command-line package patterns — "./...",
// "./internal/serve", "internal/serve/...", absolute or module-rooted
// import paths — into module import paths. The "..." walk skips
// testdata, vendor, and hidden or underscore directories, matching the
// go tool; naming a testdata directory explicitly still works, which is
// how the analyzer fixtures are linted on purpose.
func (l *Loader) ExpandPatterns(cwd string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		var dir string
		switch {
		case pat == "." || strings.HasPrefix(pat, "./") || strings.HasPrefix(pat, "../") || filepath.IsAbs(pat):
			dir = filepath.Join(cwd, pat)
			if filepath.IsAbs(pat) {
				dir = pat
			}
		case l.inModule(pat):
			dir = l.Dir(pat)
		default:
			// A module-relative path like internal/serve.
			dir = filepath.Join(l.Root, filepath.FromSlash(pat))
		}
		dir, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("lint: %s is outside module %s", pat, l.Module)
		}
		importOf := func(d string) string {
			r, _ := filepath.Rel(l.Root, d)
			if r == "." {
				return l.Module
			}
			return l.Module + "/" + filepath.ToSlash(r)
		}
		if !recursive {
			names, err := goSourceFiles(dir)
			if err != nil {
				return nil, err
			}
			if len(names) == 0 {
				return nil, fmt.Errorf("lint: no Go source files in %s", dir)
			}
			add(importOf(dir))
			continue
		}
		err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			base := filepath.Base(path)
			if path != dir && (base == "testdata" || base == "vendor" ||
				strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
				return filepath.SkipDir
			}
			if names, err := goSourceFiles(path); err == nil && len(names) > 0 {
				add(importOf(path))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Rel maps an absolute filename to a module-relative slash path, the
// form findings and baseline entries use so they are stable across
// checkouts.
func (l *Loader) Rel(filename string) string {
	rel, err := filepath.Rel(l.Root, filename)
	if err != nil {
		return filename
	}
	return filepath.ToSlash(rel)
}
