package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockheldPkgs is the lock-hygiene scope: the daemon tiers that hold
// sync.Mutex/RWMutex on request and replication paths, where a blocking
// op under a lock turns one slow syscall into a convoyed server.
var lockheldPkgs = []string{
	"internal/serve",
	"internal/wal",
	"internal/cluster",
	"internal/learn",
}

// LockHeldAnalyzer flags blocking operations — file and network I/O,
// time.Sleep, sync.WaitGroup.Wait, and channel operations without a
// default — reachable while a sync.Mutex or RWMutex is held, tracked
// through the per-function CFG so a lock released on one path does not
// poison another. Deferred unlocks are recognized for what they are:
// the lock stays held until the function exits, so everything after the
// defer still runs under it. Calls into module functions use the
// memoized call-effect summaries, so one hop of indirection does not
// hide the syscall.
func LockHeldAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "lockheld",
		Doc: "flags blocking operations (file/network I/O, time.Sleep, channel ops " +
			"without default) reachable while a sync.Mutex/RWMutex is held in " +
			"internal/{serve,wal,cluster,learn}, CFG-tracked with defer-unlock recognized",
		InScope: scopePackages("lockheld", lockheldPkgs, nil),
		Check:   checkLockHeld,
	}
}

func checkLockHeld(p *Package, inScope func(*ast.File) bool, report func(pos token.Pos, msg string)) {
	for _, file := range p.Files {
		if !inScope(file) {
			continue
		}
		for _, body := range funcBodies(file) {
			checkLockHeldBody(p, body, report)
		}
	}
}

// funcBodies yields every function-like body of a file: declarations
// first, then literals in source order. Each body is analyzed as its
// own unit — a literal's lock state starts empty, which matches how the
// runtime actually invokes it.
func funcBodies(file *ast.File) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				bodies = append(bodies, n.Body)
			}
		case *ast.FuncLit:
			bodies = append(bodies, n.Body)
		}
		return true
	})
	return bodies
}

// lockOp is one recognized mutex call.
type lockOp struct {
	key     string // receiver expression + mode, the dataflow fact
	display string // receiver expression, for messages
	acquire bool
}

// classifyLockCall recognizes x.Lock/Unlock/RLock/RUnlock on
// sync.Mutex/RWMutex (including promoted embedded mutexes, which
// resolve to the same sync methods).
func classifyLockCall(p *Package, call *ast.CallExpr) (lockOp, bool) {
	fn, ok := useOf(p.Info, call.Fun).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	recv := receiverTypeName(fn)
	if recv != "Mutex" && recv != "RWMutex" {
		return lockOp{}, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	display := exprString(p.Fset, sel.X)
	switch fn.Name() {
	case "Lock":
		return lockOp{key: display + "#w", display: display, acquire: true}, true
	case "Unlock":
		return lockOp{key: display + "#w", display: display}, true
	case "RLock":
		return lockOp{key: display + "#r", display: display, acquire: true}, true
	case "RUnlock":
		return lockOp{key: display + "#r", display: display}, true
	}
	return lockOp{}, false
}

func checkLockHeldBody(p *Package, body *ast.BlockStmt, report func(pos token.Pos, msg string)) {
	// Cheap pre-pass: a body that never locks needs no dataflow.
	locks := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != ast.Node(body) {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if op, ok := classifyLockCall(p, call); ok && op.acquire {
				locks = true
			}
		}
		return !locks
	})
	if !locks {
		return
	}

	g := buildCFG(body)
	transfer := func(n int, in factSet) factSet {
		out := in.clone()
		walkScan(g.nodes[n].scan, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if op, ok := classifyLockCall(p, call); ok {
				if op.acquire {
					out[op.key] = true
				} else if !deferredNode(g.nodes[n]) {
					delete(out, op.key)
				}
			}
			return true
		})
		return out
	}
	ins := g.forward(factSet{}, transfer)

	sums := p.Summaries()
	for i, node := range g.nodes {
		if ins[i] == nil {
			continue // unreachable node
		}
		if len(ins[i]) == 0 && !scanAcquires(p, node) {
			continue // lock-free here, and the statement takes none itself
		}
		reportLockHeldNode(p, sums, node, ins[i], report)
	}
}

// deferredNode reports whether a CFG node is a defer statement — its
// unlock runs at exit, not here, so it must not kill the fact.
func deferredNode(n cfgNode) bool {
	_, ok := n.stmt.(*ast.DeferStmt)
	return ok
}

// scanAcquires reports whether the node's own statement takes a lock
// (so a blocking op later in the same statement is still caught).
func scanAcquires(p *Package, n cfgNode) bool {
	got := false
	walkScan(n.scan, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if op, ok := classifyLockCall(p, call); ok && op.acquire {
				got = true
				return false
			}
		}
		return true
	})
	return got
}

// heldNames renders the held-lock set for a message, deterministically.
func heldNames(facts factSet) string {
	seen := map[string]bool{}
	var names []string
	for k := range facts {
		key, _ := k.(string)
		name := strings.TrimSuffix(strings.TrimSuffix(key, "#w"), "#r")
		if name != "" && !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// reportLockHeldNode walks one node's statement in source order,
// maintaining the held set across intra-statement lock calls, and
// reports every blocking site reached with a lock held.
func reportLockHeldNode(p *Package, sums *SummaryCache, node cfgNode, in factSet, report func(pos token.Pos, msg string)) {
	cur := in.clone()
	emit := func(pos token.Pos, what string) {
		if len(cur) == 0 {
			return
		}
		report(pos, fmt.Sprintf("%s while %s is held; release the lock first or move the operation out", what, heldNames(cur)))
	}
	// A select head carries no scan nodes; classify the statement itself.
	if sel, ok := node.stmt.(*ast.SelectStmt); ok {
		if !selectHasDefault(sel) {
			emit(sel.Pos(), "blocking select (no default)")
		}
		return
	}
	if rs, ok := node.stmt.(*ast.RangeStmt); ok && isChanExpr(p.Info, rs.X) {
		emit(rs.Pos(), "blocking range over channel")
		return
	}
	// Comm clauses belong to a select; their channel op is guarded by
	// the select's own classification above.
	if _, ok := node.stmt.(*ast.CommClause); ok {
		return
	}
	walkScan(node.scan, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.CallExpr:
			if op, ok := classifyLockCall(p, m); ok {
				if op.acquire {
					cur[op.key] = true
				} else if !deferredNode(node) {
					delete(cur, op.key)
				}
				return true
			}
			if desc := sums.blockingCall(p, m); desc != "" {
				emit(m.Pos(), "blocking "+desc)
			}
		case *ast.SendStmt:
			emit(m.Pos(), "blocking channel send")
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				emit(m.Pos(), "blocking channel receive")
			}
		}
		return true
	})
}
