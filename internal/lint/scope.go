package lint

import (
	"path/filepath"
	"strings"
)

// The determinism contract (DESIGN.md §12): packages whose outputs must
// be bit-identical run-to-run and at any worker count. Wall-clock reads
// and global rand draws are banned here outright.
var deterministicPkgs = []string{
	"internal/fleetsim",
	"internal/dataset",
	"internal/ml",
	"internal/expgrid",
	"internal/experiments",
	"internal/remedy",
	// The continuous-learning loop: its decision log and retrained
	// model bytes are pinned by committed goldens, so the whole engine
	// — including the tailer glue — must be free of wall-clock reads
	// and global rand draws. Its only time dependencies are injected
	// poll intervals.
	"internal/learn",
}

// deterministicFiles extends the contract to single files of packages
// that otherwise legitimately touch the wall clock: loadgen's schedule
// construction must be seed-derived (its SHA-256 schedule hash is a
// conformance artifact), while loadgen's run loop measures real
// latencies and may read real time.
var deterministicFiles = map[string][]string{
	"internal/loadgen": {"schedule.go"},
}

// modRel strips the module path's leading segment from an import path:
// ssdfail/internal/serve -> internal/serve. The module path has a
// single segment, so this needs no go.mod lookup.
func modRel(pkgPath string) string {
	if i := strings.IndexByte(pkgPath, '/'); i >= 0 {
		return pkgPath[i+1:]
	}
	return pkgPath
}

// underPkg reports whether rel is pkg or a subpackage of it.
func underPkg(rel, pkg string) bool {
	return rel == pkg || strings.HasPrefix(rel, pkg+"/")
}

// fixtureScope handles testdata fixture packages: a package under a
// testdata/ directory is in scope only for the analyzer the directory
// is named after, so `go run ./cmd/ssdlint ./internal/lint/testdata/maporder`
// exercises exactly that analyzer. Returns handled=false for normal
// packages.
func fixtureScope(analyzer, pkgPath string) (handled, inScope bool) {
	if i := strings.Index(pkgPath, "/testdata/"); i >= 0 {
		return true, pkgPath[i+len("/testdata/"):] == analyzer
	}
	return false, false
}

// scopePackages builds an InScope function from a package list (plus
// the per-file extension table, when given).
func scopePackages(analyzer string, pkgs []string, files map[string][]string) func(pkgPath, filename string) bool {
	return func(pkgPath, filename string) bool {
		if handled, ok := fixtureScope(analyzer, pkgPath); handled {
			return ok
		}
		rel := modRel(pkgPath)
		for _, p := range pkgs {
			if underPkg(rel, p) {
				return true
			}
		}
		for _, base := range files[rel] {
			if filepath.Base(filename) == base {
				return true
			}
		}
		return false
	}
}

// scopeAll admits every package in the module (fixtures still only for
// the analyzer's own directory).
func scopeAll(analyzer string) func(pkgPath, filename string) bool {
	return func(pkgPath, filename string) bool {
		if handled, ok := fixtureScope(analyzer, pkgPath); handled {
			return ok
		}
		return true
	}
}
