package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// durabilityMethods are the calls whose error return must not be
// discarded in the durability-critical packages: a swallowed fsync or
// close error means the daemon acknowledged data the disk never got.
var durabilityMethods = map[string]bool{
	"Sync": true, "Flush": true, "Close": true,
	"Write": true, "WriteString": true, "WriteTo": true,
}

// durabilityPkgs is the droppederr scope: the write-ahead log, the
// serving daemon that journals through it, and the cluster tier that
// replicates the journal across nodes.
var durabilityPkgs = []string{
	"internal/wal",
	"internal/serve",
	"internal/cluster",
}

// DroppedErrAnalyzer flags discarded error returns from Sync, Flush,
// Close, and Write(-family) calls in internal/wal, internal/serve, and
// internal/cluster — as an expression statement, behind defer, or
// assigned to the blank identifier.
func DroppedErrAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "droppederr",
		Doc: "flags discarded errors from Sync/Flush/Close/Write in internal/wal, " +
			"internal/serve, and internal/cluster, where a swallowed fsync or " +
			"replication-apply error is a durability hole",
		InScope: scopePackages("droppederr", durabilityPkgs, nil),
		Check:   checkDroppedErr,
	}
}

func checkDroppedErr(p *Package, inScope func(*ast.File) bool, report func(pos token.Pos, msg string)) {
	for _, file := range p.Files {
		if !inScope(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name, desc := durabilityCall(p, call); name != "" {
						report(call.Pos(), fmt.Sprintf(
							"error from %s discarded; check it — a swallowed %s failure is a durability hole",
							desc, name))
					}
				}
			case *ast.DeferStmt:
				if name, desc := durabilityCall(p, n.Call); name != "" {
					report(n.Call.Pos(), fmt.Sprintf(
						"error from deferred %s discarded; close explicitly on the success path and check the error",
						desc))
					_ = name
				}
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := n.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				name, desc := durabilityCall(p, call)
				if name == "" {
					return true
				}
				for i, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" && resultIsError(p.Info, call, i, len(n.Lhs)) {
						report(n.Pos(), fmt.Sprintf(
							"error from %s assigned to _; check it — a swallowed %s failure is a durability hole",
							desc, name))
					}
				}
			}
			return true
		})
	}
}

// durabilityCall reports whether call invokes a durability-critical
// method (by name) that returns an error. It returns the method name
// and a printable call description, or "" when the call is not in
// scope.
func durabilityCall(p *Package, call *ast.CallExpr) (name, desc string) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		desc = exprString(p.Fset, fun.X) + "." + name
	case *ast.Ident:
		name = fun.Name
		desc = name
	default:
		return "", ""
	}
	if !durabilityMethods[name] {
		return "", ""
	}
	if !returnsError(p.Info, call) {
		return "", ""
	}
	return name, desc
}

// returnsError reports whether the call's result includes an error
// (single error result or an error-typed last tuple element).
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isErrorType(t.At(t.Len()-1).Type())
	default:
		return isErrorType(t)
	}
}

// resultIsError reports whether result i of the call (which has nLHS
// results consumed) is the error.
func resultIsError(info *types.Info, call *ast.CallExpr, i, nLHS int) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		if i >= t.Len() || nLHS != t.Len() {
			return false
		}
		return isErrorType(t.At(i).Type())
	default:
		return nLHS == 1 && i == 0 && isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
