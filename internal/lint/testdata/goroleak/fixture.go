// Package goroleak is the analyzer fixture: goroutines in long-running
// packages need a visible lifecycle signal — a context/done-channel
// select, channel-close termination, or WaitGroup registration.
package goroleak

import (
	"context"
	"sync"
)

type daemon struct {
	wg    sync.WaitGroup
	stop  chan struct{}
	tasks chan int
}

func work() {}

func (d *daemon) leak() {
	go func() { // want "no lifecycle signal"
		for {
			work()
		}
	}()
}

func (d *daemon) ctxLoop(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case t := <-d.tasks:
				_ = t
			}
		}
	}()
}

func (d *daemon) closeTerminated() {
	go func() {
		for {
			t, ok := <-d.tasks
			if !ok {
				return
			}
			_ = t
		}
	}()
}

func (d *daemon) ranged() {
	go func() {
		for t := range d.tasks {
			_ = t
		}
	}()
}

func (d *daemon) waitGrouped() {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		for t := range d.tasks {
			_ = t
		}
	}()
}

// run loops forever with no shutdown path; flagged at each launch site.
func (d *daemon) run() {
	for {
		work()
	}
}

func (d *daemon) namedLeak() {
	go d.run() // want "no lifecycle signal"
}

func (d *daemon) localClosure() {
	fire := func() {
		for {
			work()
		}
	}
	go fire() // want "no lifecycle signal"
}

func (d *daemon) stopChan() {
	go func() {
		for {
			select {
			case <-d.stop:
				return
			case t := <-d.tasks:
				_ = t
			}
		}
	}()
}
