// Package poolescape is the analyzer fixture for the pooled-scratch
// ownership rule: a sync.Pool value belongs to one owner between Get
// and Put, must not escape, and is untouchable after the Put.
package poolescape

import "sync"

type scratch struct {
	buf  []byte
	vals []int
}

var pool = sync.Pool{New: func() any { return new(scratch) }}

type holder struct{ last *scratch }

var global *scratch

var globalBuf []byte

// ok exercises the legal shapes: writes into the pooled object itself,
// basic-value copies out of it, and a paired Put.
func ok() int {
	s := pool.Get().(*scratch)
	s.buf = append(s.buf[:0], 'a')
	n := len(s.buf)
	pool.Put(s)
	return n
}

// deferred keeps the pooled value for the whole body via defer.
func deferred() int {
	s := pool.Get().(*scratch)
	defer pool.Put(s)
	s.vals = s.vals[:0]
	return cap(s.vals)
}

func fieldEscape(h *holder) {
	s := pool.Get().(*scratch)
	h.last = s // want "stored into h.last"
	pool.Put(s)
}

func globalEscape() {
	s := pool.Get().(*scratch)
	global = s // want "package variable"
	pool.Put(s)
}

func derivedEscape() {
	s := pool.Get().(*scratch)
	b := s.buf[:0]
	globalBuf = b // want "package variable"
	pool.Put(s)
}

func chanEscape(ch chan *scratch) {
	s := pool.Get().(*scratch)
	ch <- s // want "sent on a channel"
	pool.Put(s)
}

func returnEscape() []byte {
	s := pool.Get().(*scratch)
	defer pool.Put(s)
	return s.buf // want "pooled value returned"
}

func goEscape() {
	s := pool.Get().(*scratch)
	go func() { // want "captured by a goroutine"
		_ = s.buf
	}()
	pool.Put(s)
}

func useAfterPut() int {
	s := pool.Get().(*scratch)
	pool.Put(s)
	return len(s.buf) // want "used after Put"
}

// allowed shows a reasoned suppression: handing the pooled value to a
// same-package helper that completes before return is accepted here.
func allowed(h *holder) {
	s := pool.Get().(*scratch)
	//ssdlint:allow poolescape fixture: the holder is cleared before Put below
	h.last = s
	h.last = nil
	pool.Put(s)
}
