// Package lockheld is the analyzer fixture: blocking operations must
// not be reachable while a mutex is held, with the CFG telling
// released-on-this-path apart from held-into-the-call.
package lockheld

import (
	"os"
	"sync"
	"time"
)

type server struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	cond *sync.Cond
	ch   chan int
	data []byte
}

func (s *server) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while s.mu is held"
	s.mu.Unlock()
}

func (s *server) fileUnderDeferredUnlock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := os.ReadFile("x") // want "os.ReadFile while s.mu is held"
	return err
}

func (s *server) releasedFirst() {
	s.mu.Lock()
	s.data = append(s.data[:0], 1)
	s.mu.Unlock()
	time.Sleep(time.Millisecond)
}

func (s *server) releasedOnThisPath(c bool) {
	s.mu.Lock()
	if c {
		s.mu.Unlock()
		time.Sleep(time.Millisecond)
		return
	}
	s.mu.Unlock()
}

func (s *server) readLockSend(v int) {
	s.rw.RLock()
	s.ch <- v // want "channel send while s.rw is held"
	s.rw.RUnlock()
}

func (s *server) selectWithDefault() {
	s.mu.Lock()
	select {
	case v := <-s.ch:
		_ = v
	default:
	}
	s.mu.Unlock()
}

func (s *server) selectNoDefault() {
	s.mu.Lock()
	select { // want "blocking select"
	case v := <-s.ch:
		_ = v
	}
	s.mu.Unlock()
}

func (s *server) condWait() {
	s.mu.Lock()
	for len(s.data) == 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// flush blocks on file I/O; lock-free itself, but callers holding a
// lock are flagged through the call-effect summary.
func (s *server) flush() error {
	return os.WriteFile("x", s.data, 0o644)
}

func (s *server) flushUnderLock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flush() // want "call to flush"
}

// flushAllowed writes under the caller's lock by documented design;
// the function-level directive keeps the summary, and so every
// caller, clean.
//
//ssdlint:allow lockheld fixture: write-under-lock is this helper's documented contract
func (s *server) flushAllowed() error {
	return os.WriteFile("x", s.data, 0o644)
}

func (s *server) allowedCaller() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushAllowed()
}
