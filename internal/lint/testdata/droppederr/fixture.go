// Package fixture exercises the droppederr analyzer.
package fixture

import "fmt"

// file stands in for a WAL segment handle.
type file struct{}

func (file) Sync() error                 { return nil }
func (file) Flush() error                { return nil }
func (file) Close() error                { return nil }
func (file) Write(p []byte) (int, error) { return len(p), nil }
func (file) Name() string                { return "seg" }

func dropped(f file) {
	f.Sync()  // want "error from f.Sync discarded"
	f.Flush() // want "error from f.Flush discarded"
	f.Close() // want "error from f.Close discarded"
}

func deferred(f file) {
	defer f.Close() // want "error from deferred f.Close discarded"
}

func blanked(f file) int {
	n, _ := f.Write([]byte("x")) // want "error from f.Write assigned to _"
	return n
}

func handledOK(f file) error {
	if err := f.Sync(); err != nil {
		return fmt.Errorf("sync: %w", err)
	}
	n, err := f.Write(nil)
	_ = n
	if err != nil {
		return err
	}
	return f.Close()
}

func noErrorResultOK(f file) {
	_ = f.Name() // Name returns no error: legal
}

func allowedDrop(f file) {
	f.Close() //ssdlint:allow droppederr read-only handle, close error carries no data loss
}
