// Package fixture exercises the nondeterminism analyzer. Annotated
// lines must produce a finding whose message contains the quoted
// substring; unmarked lines must stay clean.
package fixture

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

// Schedule stands in for a seed-derived artifact.
type Schedule struct {
	Seed  int64
	Clock func() time.Time
}

func wallClock() time.Duration {
	start := time.Now()                // want "wall clock read (time.Now)"
	_ = time.Since(start)              // want "wall clock read (time.Since)"
	later := time.Now().Add(time.Hour) // want "wall clock read (time.Now)"
	return later.Sub(start)
}

func globalRand() float64 {
	n := rand.Intn(10)                 // want "global math/rand source used (rand.Intn)"
	f := rand.Float64()                // want "global math/rand source used (rand.Float64)"
	rand.Shuffle(n, func(i, j int) {}) // want "global math/rand source used (rand.Shuffle)"
	_ = randv2.N(int64(4))             // want "global math/rand source used (rand.N)"
	return f
}

func clockSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "seeded from the wall clock"
}

func seededOK(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed)) // seeded constructor: legal
	pcg := randv2.New(randv2.NewPCG(1, uint64(seed)))
	return rng.Float64() + pcg.Float64() // methods on an explicit source: legal
}

func injectedClockOK(s *Schedule) time.Time {
	// Reading an injected clock is the blessed pattern.
	return s.Clock()
}

func allowedWallClock() time.Time {
	//ssdlint:allow nondeterminism benchmark wall time only, never feeds results
	return time.Now()
}

func allowedTrailing() time.Time {
	return time.Now() //ssdlint:allow nondeterminism fixture demonstrates trailing suppression
}
