// Package fixture exercises the maporder analyzer.
package fixture

import (
	"crypto/sha256"
	"fmt"
	"io"
	"sort"
	"strings"
)

func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // plain counting loop below stays legal
		keys = append(keys, k) // want "appended in map iteration order and never sorted"
	}
	return keys
}

func appendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // sorted two lines down: legal
	}
	sort.Strings(keys)
	return keys
}

func appendThenSliceSort(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func writeInOrder(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s %d\n", k, v) // want "map iteration order reaches the writer via fmt.Fprintf"
	}
}

func hashInOrder(m map[string]uint64) [32]byte {
	h := sha256.New()
	for k := range m {
		h.Write([]byte(k)) // want "map iteration order reaches h via Write"
	}
	return [32]byte(h.Sum(nil))
}

func builderInOrder(m map[string]int) string {
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k) // want "map iteration order reaches sb via WriteString"
	}
	return sb.String()
}

func mapToMapOK(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v // writing map entries is order-independent: legal
	}
	return out
}

func sumOK(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // commutative fold: legal
	}
	return total
}

func loopLocalOK(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...) // loop-local slice: legal
		total += len(local)
	}
	return total
}

func allowedEmission(w io.Writer, m map[string]int) {
	for k := range m {
		//ssdlint:allow maporder duplicate-tolerant debug trace, order irrelevant
		fmt.Fprintln(w, k)
	}
}
