// Package hotalloc is the analyzer fixture: functions under the
// //ssdlint:hotpath annotation must be allocation-free outside
// CFG-detected error paths; everything else may allocate freely.
package hotalloc

import (
	"errors"
	"fmt"
	"strconv"
)

type point struct{ x, y int }

func sink(v any) { _ = v }

// Render is the shape the contract wants: self-appends and
// strconv.Append* helpers into a caller-owned buffer.
//
//ssdlint:hotpath fixture: render path must stay 0 B/op
func Render(buf []byte, vals []int64) []byte {
	for _, v := range vals {
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, v, 10)
	}
	return append(buf, '\n')
}

// Bad collects one of each allocation class.
//
//ssdlint:hotpath fixture: every site below is a finding
func Bad(buf []byte, other []byte, n int64) []byte {
	scratch := make([]byte, 0, 8) // want "make allocates"
	scratch = append(scratch, 'x')
	tmp := append(other, scratch...) // want "append outside the x = append"
	_ = tmp
	s := string(buf) // want "conversion copies"
	t := []byte(s)   // want "conversion copies"
	_ = t
	u := "v=" + s // want "string concatenation"
	_ = u
	box := fmt.Sprint(n) // want "fmt.Sprint allocates"
	_ = box
	p := &point{1, 2} // want "address of composite literal"
	_ = p
	m := map[string]int{} // want "map/slice literal"
	_ = m
	sl := []int{1, 2} // want "map/slice literal"
	_ = sl
	f := func() {} // want "function literal allocates its closure"
	f()
	sink(n) // want "boxed into an interface"
	return buf
}

// Cold shows the error-path exemption: every statement in the failing
// branch continues only into an error-constructing return, so the
// Sprintf and the boxing inside it are exempt.
//
//ssdlint:hotpath fixture: error paths may allocate
func Cold(buf []byte, n int) ([]byte, error) {
	if n < 0 {
		msg := fmt.Sprintf("bad n: %d", n)
		return nil, errors.New(msg)
	}
	return append(buf, byte(n)), nil
}

// Allowed shows inline suppression of an accepted allocation.
//
//ssdlint:hotpath fixture: allow-directive demo
func Allowed() []int {
	//ssdlint:allow hotalloc first-sight allocation, amortized across the run
	return []int{1, 2, 3}
}

// NotHot allocates at will: no annotation, no table entry, no findings.
func NotHot(n int64) string {
	return fmt.Sprint(n)
}
