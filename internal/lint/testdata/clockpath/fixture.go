// Package fixture exercises the clockpath analyzer.
package fixture

import "time"

type server struct {
	now func() time.Time
}

func newServer(clock func() time.Time) *server {
	if clock == nil {
		clock = time.Now // binding the default IS the seam: legal
	}
	return &server{now: clock}
}

func (s *server) uptime(start time.Time) time.Duration {
	return s.now().Sub(start) // injected clock: legal
}

func direct(start time.Time) time.Duration {
	_ = time.Now()           // want "direct wall-clock read time.Now()"
	return time.Since(start) // want "direct wall-clock read time.Since()"
}

func allowedDirect() time.Time {
	return time.Now() //ssdlint:allow clockpath process start stamp, taken once before the seam exists
}
