package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotPathDirective marks a function as allocation-free by contract:
//
//	//ssdlint:hotpath [reason]
//
// in the function's doc comment. The scope table below covers the
// functions the DESIGN §15 0 B/op contract already names, so the
// annotation is for new hot paths, not a retrofit.
const hotPathDirective = "//ssdlint:hotpath"

// hotPathFuncs is the static scope table: module-relative package path
// to "Receiver.Method" (or plain "Func") names under the zero-alloc
// contract. These are the functions whose steady state the
// AllocsPerRun tests pin at 0 B/op; hotalloc turns that dynamic pin
// into a source-level one.
var hotPathFuncs = map[string]map[string]bool{
	"internal/serve": {
		"Server.processBinBatch":  true,
		"binState.renderBinReply": true,
	},
	"internal/ml/forest": {
		"Flat.Score":     true,
		"Flat.ScoreRows": true,
	},
	"internal/trace": {
		"AppendFrame": true,
		"BeginFrame":  true,
		"EndFrame":    true,
		"NextFrame":   true,
	},
	"internal/wal": {
		"Log.Append": true,
	},
}

// HotAllocAnalyzer flags allocation sites inside hot-path functions:
// composite literals that hit the heap, make/new, growing appends
// outside the reuse idiom, string/[]byte conversions, string
// concatenation, interface boxing at call boundaries, closure
// creation, and fmt.* calls. Error paths — blocks whose every
// continuation returns a constructed error — are exempt: a request
// that is already failing may allocate its message.
func HotAllocAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "hotalloc",
		Doc: "flags allocation sites (composite literals, make/new, growing append, " +
			"string/[]byte conversions, interface boxing, closures, fmt.*) in functions " +
			"marked //ssdlint:hotpath or listed in the zero-alloc scope table, " +
			"with CFG-detected error paths exempt",
		InScope: scopeAll("hotalloc"),
		Check:   checkHotAlloc,
	}
}

// funcKey renders a FuncDecl as the scope-table key: "Recv.Name" with
// the bare receiver type name, or "Name" for package functions.
func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// isHotPathFunc reports whether a declaration is under the zero-alloc
// contract, via annotation or the scope table.
func isHotPathFunc(pkgPath string, fd *ast.FuncDecl) bool {
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if strings.HasPrefix(c.Text, hotPathDirective) {
				return true
			}
		}
	}
	return hotPathFuncs[modRel(pkgPath)][funcKey(fd)]
}

func checkHotAlloc(p *Package, inScope func(*ast.File) bool, report func(pos token.Pos, msg string)) {
	for _, file := range p.Files {
		if !inScope(file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPathFunc(p.Path, fd) {
				continue
			}
			checkHotAllocBody(p, fd.Body, report)
		}
	}
}

// errorReturnNode reports whether a CFG node terminates an error path:
// a return constructing an error (fmt.Errorf, errors.New) or a panic.
func errorReturnNode(p *Package, node cfgNode) bool {
	switch s := node.stmt.(type) {
	case *ast.ReturnStmt:
		found := false
		walkScan(node.scan, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn, ok := useOf(p.Info, call.Fun).(*types.Func); ok && fn.Pkg() != nil {
				path, name := fn.Pkg().Path(), fn.Name()
				if (path == "fmt" && name == "Errorf") || (path == "errors" && name == "New") {
					found = true
					return false
				}
			}
			return true
		})
		return found
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					return true
				}
			}
		}
	}
	return false
}

// coldNodes computes the error-path exemption on the CFG: a node is
// cold when every execution continuing from it leaves through an
// error-constructing return (or panic). The fixpoint starts optimistic
// and shrinks, so a node on any path to a normal exit stays hot.
func coldNodes(p *Package, g *cfg) []bool {
	errRet := make([]bool, len(g.nodes))
	for i, n := range g.nodes {
		errRet[i] = errorReturnNode(p, n)
	}
	cold := make([]bool, len(g.nodes))
	for i := range cold {
		cold[i] = true
	}
	cold[g.exit] = false
	for changed := true; changed; {
		changed = false
		for i, n := range g.nodes {
			if !cold[i] || errRet[i] {
				continue
			}
			allCold := len(n.succs) > 0
			for _, s := range n.succs {
				if !cold[s] && !errRet[s] {
					allCold = false
					break
				}
			}
			if !allCold {
				cold[i] = false
				changed = true
			}
		}
	}
	for i := range cold {
		cold[i] = cold[i] || errRet[i]
	}
	return cold
}

func checkHotAllocBody(p *Package, body *ast.BlockStmt, report func(pos token.Pos, msg string)) {
	g := buildCFG(body)
	cold := coldNodes(p, g)
	legal := legalAppends(p, body)

	handled := map[ast.Node]bool{}
	for i, node := range g.nodes {
		if cold[i] {
			continue
		}
		walkScan(node.scan, func(m ast.Node) bool {
			if handled[m] {
				return true
			}
			switch m := m.(type) {
			case *ast.FuncLit:
				report(m.Pos(), "function literal allocates its closure on the hot path; hoist it or pass state explicitly")
			case *ast.UnaryExpr:
				if m.Op == token.AND {
					if cl, ok := m.X.(*ast.CompositeLit); ok {
						handled[cl] = true
						report(m.Pos(), "heap allocation: address of composite literal on the hot path; reuse a pooled or preallocated value")
					}
				}
			case *ast.CompositeLit:
				if tv, ok := p.Info.Types[m]; ok && tv.Type != nil {
					switch tv.Type.Underlying().(type) {
					case *types.Map, *types.Slice:
						report(m.Pos(), "map/slice literal allocates on the hot path; preallocate outside it")
					}
				}
			case *ast.BinaryExpr:
				if m.Op == token.ADD && isStringExpr(p.Info, m) && !isConstExpr(p.Info, m) {
					if l, ok := m.X.(*ast.BinaryExpr); ok {
						handled[l] = true
					}
					if r, ok := m.Y.(*ast.BinaryExpr); ok {
						handled[r] = true
					}
					report(m.Pos(), "string concatenation allocates on the hot path; append into a reused buffer instead")
				}
			case *ast.CallExpr:
				reportHotCall(p, m, legal, report)
			}
			return true
		})
	}
}

// legalAppends collects append calls in the two allocation-amortizing
// idioms: x = append(x, ...) back into the same expression, and a
// directly returned append (the caller owns the growth).
func legalAppends(p *Package, body *ast.BlockStmt) map[*ast.CallExpr]bool {
	legal := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i := range n.Rhs {
				call, ok := n.Rhs[i].(*ast.CallExpr)
				if !ok || !isBuiltinAppend(p.Info, call) || len(call.Args) == 0 {
					continue
				}
				if exprString(p.Fset, n.Lhs[i]) == exprString(p.Fset, call.Args[0]) {
					legal[call] = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if call, ok := r.(*ast.CallExpr); ok && isBuiltinAppend(p.Info, call) {
					legal[call] = true
				}
			}
		}
		return true
	})
	return legal
}

func reportHotCall(p *Package, call *ast.CallExpr, legal map[*ast.CallExpr]bool, report func(pos token.Pos, msg string)) {
	// Builtins: make, new, and appends outside the reuse idioms.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				report(call.Pos(), b.Name()+" allocates on the hot path; preallocate or pool the value")
			case "append":
				if !legal[call] {
					report(call.Pos(), "append outside the x = append(x, ...) reuse idiom allocates when it grows; append in place or preallocate")
				}
			}
			return
		}
	}
	// Conversions between string and byte/rune slices copy.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if stringSliceConversion(p.Info, tv.Type, call.Args[0]) {
			report(call.Pos(), "string/[]byte conversion copies on the hot path; keep one representation")
		}
		return
	}
	if fn, ok := useOf(p.Info, call.Fun).(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		report(call.Pos(), "fmt."+fn.Name()+" allocates on the hot path; render with strconv.Append* into a reused buffer")
		return
	}
	reportBoxingArgs(p, call, report)
}

// stringSliceConversion reports whether converting arg to target
// crosses the string/[]byte (or []rune) boundary, which copies.
func stringSliceConversion(info *types.Info, target types.Type, arg ast.Expr) bool {
	argTV, ok := info.Types[arg]
	if !ok || argTV.Type == nil {
		return false
	}
	return (isStringType(target) && isByteishSlice(argTV.Type)) ||
		(isByteishSlice(target) && isStringType(argTV.Type))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteishSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Type != nil && isStringType(tv.Type)
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// reportBoxingArgs flags concrete values passed to interface
// parameters: the conversion boxes on the heap unless the value is
// already pointer-shaped.
func reportBoxingArgs(p *Package, call *ast.CallExpr, report func(pos token.Pos, msg string)) {
	tv, ok := p.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
			continue // f(xs...) passes the slice through, no boxing
		}
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			last := params.At(params.Len() - 1).Type()
			if s, ok := last.Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at, ok := p.Info.Types[arg]
		if !ok || at.Type == nil || at.IsNil() {
			continue
		}
		if _, alreadyIface := at.Type.Underlying().(*types.Interface); alreadyIface {
			continue
		}
		switch at.Type.Underlying().(type) {
		case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
			continue // pointer-shaped: stored directly, no box
		}
		report(arg.Pos(), fmt.Sprintf("%s is boxed into an interface parameter and allocates on the hot path",
			exprString(p.Fset, arg)))
	}
}
