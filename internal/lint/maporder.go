package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// emissionMethods are method names whose call inside a map-range body
// makes the iteration order observable: bytes leave through a writer,
// an encoder, a hash, or an ordered accumulator (report tables, the
// conformance violation list). AddRow and addf are this repo's ordered
// table/violation accumulators.
var emissionMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteTo": true, "Encode": true, "AddRow": true, "addf": true,
}

// MapOrderAnalyzer flags for-range loops over maps whose body makes the
// random iteration order observable — appending to a slice that is
// never subsequently sorted, or writing to a writer/encoder/hash.
// This is the exact bug class that would quietly destroy schedule
// hashes, snapshot byte-equality, and golden-file tests: the code is
// correct on every run and byte-identical on none.
func MapOrderAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "maporder",
		Doc: "flags map iteration feeding a slice (with no later sort), writer, " +
			"encoder, or hash, where the random order becomes observable output",
		InScope: scopeAll("maporder"),
		Check:   checkMapOrder,
	}
}

func checkMapOrder(p *Package, inScope func(*ast.File) bool, report func(pos token.Pos, msg string)) {
	for _, file := range p.Files {
		if !inScope(file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapOrderFunc(p, fd.Body, report)
		}
	}
}

func checkMapOrderFunc(p *Package, body *ast.BlockStmt, report func(pos token.Pos, msg string)) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !isMapType(p.Info, rs.X) {
			return true
		}
		checkMapRangeBody(p, body, rs, report)
		return true
	})
}

// isMapType reports whether e has map type (through named types and
// aliases).
func isMapType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRangeBody inspects one map-range loop. funcBody is the whole
// enclosing function body: a sort call anywhere after the loop that
// mentions the appended slice legitimizes the collect-then-sort idiom.
func checkMapRangeBody(p *Package, funcBody *ast.BlockStmt, rs *ast.RangeStmt, report func(pos token.Pos, msg string)) {
	reported := false // one finding per loop is enough
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		switch n := n.(type) {
		case *ast.RangeStmt:
			// A nested map-range gets its own check; its body's
			// emissions are attributed there, not doubly here. A nested
			// range over a slice keeps the outer map's order observable,
			// so only map-ranges are skipped.
			if n != rs && isMapType(p.Info, n.X) {
				return false
			}
		case *ast.CallExpr:
			if name, recv := emissionCall(p, n); name != "" {
				reported = true
				report(n.Pos(), fmt.Sprintf(
					"map iteration order reaches %s via %s; iterate sorted keys instead",
					recv, name))
				return false
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(p.Info, call) || len(call.Args) == 0 {
					continue
				}
				target := rootIdentObj(p.Info, call.Args[0])
				if target == nil || declaredWithin(target, rs) {
					continue
				}
				if sortedAfter(p, funcBody, rs, target) {
					continue
				}
				reported = true
				report(n.Pos(), fmt.Sprintf(
					"%q is appended in map iteration order and never sorted afterwards; sort it or iterate sorted keys",
					target.Name()))
				return false
			}
		}
		return true
	})
}

// emissionCall classifies a call inside a map-range body: a method in
// emissionMethods, or an fmt.Fprint* into a writer. It returns the
// called name and a printable receiver ("the writer" for fmt calls).
func emissionCall(p *Package, call *ast.CallExpr) (name, recv string) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj := p.Info.Uses[fun.Sel]
		if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			switch fn.Name() {
			case "Fprint", "Fprintf", "Fprintln":
				return "fmt." + fn.Name(), "the writer"
			}
		}
		// A package-qualified call (sort.Strings, json.Marshal) is not a
		// method on a stateful receiver; only flag true method calls.
		if _, isPkg := p.Info.Uses[fun.Sel].(*types.Func); isPkg {
			if id, ok := fun.X.(*ast.Ident); ok {
				if _, isPkgName := p.Info.Uses[id].(*types.PkgName); isPkgName {
					return "", ""
				}
			}
		}
		if emissionMethods[fun.Sel.Name] {
			return fun.Sel.Name, exprString(p.Fset, fun.X)
		}
	}
	return "", ""
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// rootIdentObj resolves the variable at the root of an expression like
// x, x.f, or x[i] — the thing whose final order the append determines.
func rootIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			if obj := info.Uses[t]; obj != nil {
				return obj
			}
			return info.Defs[t]
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj is declared inside the range
// statement — appends to loop-local slices don't outlive an iteration's
// order decision in a way the loop itself can observe.
func declaredWithin(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()
}

// sortedAfter reports whether, after the range loop, the enclosing
// function calls into package sort or slices with the appended variable
// among the arguments — the collect-keys-then-sort idiom.
func sortedAfter(p *Package, funcBody *ast.BlockStmt, rs *ast.RangeStmt, target types.Object) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			mentioned := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && p.Info.Uses[id] == target {
					mentioned = true
					return false
				}
				return true
			})
			if mentioned {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// exprString renders a short source form of an expression for messages.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "?"
	}
	return buf.String()
}
