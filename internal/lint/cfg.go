package lint

// Per-function control-flow graphs and a small forward dataflow
// framework. The contract analyzers added in ssdlint v2 (hotalloc,
// poolescape, lockheld, goroleak) are not purely syntactic: "a blocking
// call is reachable while the mutex is held" and "a pooled buffer is
// used past its Put" are path properties. The CFG keeps them honest —
// the WAL's syncer, for example, releases its mutex before fsyncing,
// and only a graph walk can tell that apart from an fsync under lock.
//
// Granularity is one node per statement. Compound statements (if, for,
// switch, select) get a header node carrying only the expressions the
// statement itself evaluates (condition, range operand, switch tag);
// their bodies become separate nodes wired through successor edges.
// Short-circuit evaluation inside one expression is not modeled — facts
// hold at statement boundaries, which is exactly the precision the
// analyzers need.

import (
	"go/ast"
)

// A cfgNode is one statement (or statement header) in a function's
// control-flow graph.
type cfgNode struct {
	// stmt is the underlying statement; nil only for the synthetic exit
	// node. For compound statements this is the statement itself, but
	// scan — not stmt — delimits what this node evaluates.
	stmt ast.Stmt
	// scan holds the AST nodes evaluated when control reaches this node:
	// the whole statement for simple statements, just the header
	// expressions for compound ones. Walks over scan must not descend
	// into nested *ast.FuncLit bodies (walkScan enforces this); literals
	// are analyzed as their own functions.
	scan []ast.Node
	// succs are indices of possible successor nodes.
	succs []int
}

// A cfg is the control-flow graph of one function body.
type cfg struct {
	nodes []cfgNode
	entry int // index of the first node (== exit for an empty body)
	exit  int // synthetic exit node; returns and falling off the end reach it
	// defers lists every defer statement in the body, in source order.
	// Deferred calls execute at the exit, so analyses that track
	// paired-at-exit effects (a deferred Unlock or Put) read this
	// instead of the node sequence.
	defers []*ast.DeferStmt
}

// cfgBuilder holds the state of one graph construction.
type cfgBuilder struct {
	c *cfg
	// breakTo / continueTo are stacks of jump targets for enclosing
	// loops/switches; each entry carries the statement's label ("" for
	// unlabeled).
	breakTo    []jumpTarget
	continueTo []jumpTarget
	// labels maps a label name to the node starting the labeled
	// statement, for goto resolution.
	labels map[string]int
	// pendingGotos are goto nodes whose label had not been seen yet.
	pendingGotos []pendingGoto
	// pendingLabel carries a label down to the next loop/switch so its
	// break/continue targets register under that name.
	pendingLabel string
}

type jumpTarget struct {
	label string
	node  int
}

type pendingGoto struct {
	node  int
	label string
}

// buildCFG constructs the control-flow graph of one function body.
func buildCFG(body *ast.BlockStmt) *cfg {
	b := &cfgBuilder{c: &cfg{}, labels: map[string]int{}}
	exit := b.newNode(nil, nil) // reserve index 0 for the exit
	b.c.exit = exit
	first, last := b.buildStmts(body.List)
	if first < 0 {
		b.c.entry = exit
	} else {
		b.c.entry = first
	}
	for _, n := range last {
		b.edge(n, exit)
	}
	for _, g := range b.pendingGotos {
		if target, ok := b.labels[g.label]; ok {
			b.edge(g.node, target)
		} else {
			// An unresolved goto (label in a part of the tree we did not
			// wire) conservatively flows to the exit.
			b.edge(g.node, exit)
		}
	}
	return b.c
}

func (b *cfgBuilder) newNode(stmt ast.Stmt, scan []ast.Node) int {
	b.c.nodes = append(b.c.nodes, cfgNode{stmt: stmt, scan: scan})
	return len(b.c.nodes) - 1
}

func (b *cfgBuilder) edge(from, to int) {
	n := &b.c.nodes[from]
	for _, s := range n.succs {
		if s == to {
			return
		}
	}
	n.succs = append(n.succs, to)
}

// buildStmts wires a statement list. It returns the index of the first
// node (-1 for an empty list) and the set of open ends — nodes whose
// control falls through to whatever follows the list.
func (b *cfgBuilder) buildStmts(stmts []ast.Stmt) (first int, last []int) {
	first = -1
	last = nil
	for _, s := range stmts {
		f, l := b.buildStmt(s)
		if f < 0 {
			continue
		}
		if first < 0 {
			first = f
		}
		for _, n := range last {
			b.edge(n, f)
		}
		last = l
	}
	return first, last
}

// exprs collects non-nil AST nodes for a scan list.
func exprs(nodes ...ast.Node) []ast.Node {
	var out []ast.Node
	for _, n := range nodes {
		if n != nil {
			switch v := n.(type) {
			case *ast.BlockStmt:
				continue // bodies are wired, not scanned
			case ast.Expr:
				out = append(out, v)
			default:
				out = append(out, n)
			}
		}
	}
	return out
}

// buildStmt wires one statement and returns its first node and open
// ends. A statement that never falls through (return, goto,
// break/continue) returns no open ends.
func (b *cfgBuilder) buildStmt(s ast.Stmt) (first int, last []int) {
	label := b.pendingLabel
	b.pendingLabel = ""
	switch s := s.(type) {
	case *ast.BlockStmt:
		f, l := b.buildStmts(s.List)
		if f < 0 {
			// An empty block still needs a node so edges can pass through.
			n := b.newNode(s, nil)
			return n, []int{n}
		}
		return f, l

	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		f, l := b.buildStmt(s.Stmt)
		if f < 0 {
			f = b.newNode(s, nil)
			l = []int{f}
		}
		b.labels[s.Label.Name] = f
		return f, l

	case *ast.IfStmt:
		head := b.newNode(s, exprs(s.Init, s.Cond))
		tf, tl := b.buildStmts(s.Body.List)
		if tf < 0 {
			last = append(last, head)
		} else {
			b.edge(head, tf)
			last = append(last, tl...)
		}
		if s.Else != nil {
			ef, el := b.buildStmt(s.Else)
			if ef < 0 {
				last = append(last, head)
			} else {
				b.edge(head, ef)
				last = append(last, el...)
			}
		} else {
			last = append(last, head)
		}
		return head, last

	case *ast.ForStmt:
		head := b.newNode(s, exprs(s.Init, s.Cond, s.Post))
		b.pushLoop(label, head)
		bf, bl := b.buildStmts(s.Body.List)
		if bf < 0 {
			b.edge(head, head)
		} else {
			b.edge(head, bf)
			for _, n := range bl {
				b.edge(n, head)
			}
		}
		breakNode := b.popLoop()
		if s.Cond != nil {
			last = append(last, head)
		}
		last = append(last, breakNode...)
		return head, last

	case *ast.RangeStmt:
		head := b.newNode(s, exprs(s.Key, s.Value, s.X))
		b.pushLoop(label, head)
		bf, bl := b.buildStmts(s.Body.List)
		if bf < 0 {
			b.edge(head, head)
		} else {
			b.edge(head, bf)
			for _, n := range bl {
				b.edge(n, head)
			}
		}
		breakNode := b.popLoop()
		last = append(last, head)
		last = append(last, breakNode...)
		return head, last

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var scan []ast.Node
		var bodyList []ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			scan = exprs(sw.Init, sw.Tag)
			bodyList = sw.Body.List
		case *ast.TypeSwitchStmt:
			scan = exprs(sw.Init, sw.Assign)
			bodyList = sw.Body.List
		}
		head := b.newNode(s, scan)
		b.pushBreakOnly(label)
		hasDefault := false
		type caseEnds struct {
			bodyFirst int
			open      []int
			nextBody  *int // fallthrough target fill-in
		}
		var cases []caseEnds
		for _, cs := range bodyList {
			cc, ok := cs.(*ast.CaseClause)
			if !ok {
				continue
			}
			if cc.List == nil {
				hasDefault = true
			}
			var listScan []ast.Node
			for _, e := range cc.List {
				listScan = append(listScan, e)
			}
			cn := b.newNode(cc, listScan)
			b.edge(head, cn)
			bf, bl := b.buildStmts(cc.Body)
			body := cn
			if bf >= 0 {
				b.edge(cn, bf)
			}
			ends := bl
			if bf < 0 {
				ends = []int{cn}
			}
			// A trailing fallthrough jumps to the next case's body;
			// resolve after all cases are built.
			fallsThrough := false
			if len(cc.Body) > 0 {
				if br, ok := cc.Body[len(cc.Body)-1].(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
					fallsThrough = true
				}
			}
			ce := caseEnds{bodyFirst: body, open: ends}
			if fallsThrough {
				ce.nextBody = new(int)
			}
			cases = append(cases, ce)
		}
		for i := range cases {
			if cases[i].nextBody != nil && i+1 < len(cases) {
				// Wire every open end of the falling-through case to the
				// next case's first body node.
				for _, n := range cases[i].open {
					b.edge(n, cases[i+1].bodyFirst)
				}
				cases[i].open = nil
			}
			last = append(last, cases[i].open...)
		}
		if !hasDefault || len(cases) == 0 {
			last = append(last, head)
		}
		last = append(last, b.popLoop()...)
		return head, last

	case *ast.SelectStmt:
		head := b.newNode(s, nil)
		b.pushBreakOnly(label)
		for _, cs := range s.Body.List {
			cc, ok := cs.(*ast.CommClause)
			if !ok {
				continue
			}
			cn := b.newNode(cc, exprs(cc.Comm))
			b.edge(head, cn)
			bf, bl := b.buildStmts(cc.Body)
			if bf >= 0 {
				b.edge(cn, bf)
				last = append(last, bl...)
			} else {
				last = append(last, cn)
			}
		}
		if len(s.Body.List) == 0 {
			// select{} blocks forever; no successors beyond breaks.
			last = nil
		}
		last = append(last, b.popLoop()...)
		return head, last

	case *ast.ReturnStmt:
		var scan []ast.Node
		for _, e := range s.Results {
			scan = append(scan, e)
		}
		n := b.newNode(s, scan)
		b.edge(n, b.c.exit)
		return n, nil

	case *ast.BranchStmt:
		n := b.newNode(s, nil)
		name := ""
		if s.Label != nil {
			name = s.Label.Name
		}
		switch s.Tok.String() {
		case "break":
			if t := b.findTarget(b.breakTo, name); t >= 0 {
				b.edge(n, t)
			} else {
				b.edge(n, b.c.exit)
			}
		case "continue":
			if t := b.findTarget(b.continueTo, name); t >= 0 {
				b.edge(n, t)
			} else {
				b.edge(n, b.c.exit)
			}
		case "goto":
			if t, ok := b.labels[name]; ok {
				b.edge(n, t)
			} else {
				b.pendingGotos = append(b.pendingGotos, pendingGoto{node: n, label: name})
			}
		case "fallthrough":
			// Wired by the enclosing switch; node just exists so facts
			// flow through the case's open ends.
			return n, []int{n}
		}
		return n, nil

	case *ast.DeferStmt:
		// The call's arguments are evaluated here; the call itself runs
		// at exit. Record it for exit-time analyses.
		var scan []ast.Node
		for _, a := range s.Call.Args {
			scan = append(scan, a)
		}
		n := b.newNode(s, scan)
		b.c.defers = append(b.c.defers, s)
		return n, []int{n}

	default:
		// Simple statements: expression, assignment, send, inc/dec, go,
		// declarations, empty. The whole statement is the scan set.
		n := b.newNode(s, []ast.Node{s})
		return n, []int{n}
	}
}

func (b *cfgBuilder) pushLoop(label string, head int) {
	// The break target is a join node created lazily: breaks edge to a
	// placeholder node that the caller then treats as an open end.
	join := b.newNode(nil, nil)
	b.breakTo = append(b.breakTo, jumpTarget{label: label, node: join})
	b.continueTo = append(b.continueTo, jumpTarget{label: label, node: head})
}

func (b *cfgBuilder) pushBreakOnly(label string) {
	join := b.newNode(nil, nil)
	b.breakTo = append(b.breakTo, jumpTarget{label: label, node: join})
	b.continueTo = append(b.continueTo, jumpTarget{label: "\x00none", node: -1})
}

// popLoop unwinds one break/continue level and returns the break join
// node as an open end when any break targeted it.
func (b *cfgBuilder) popLoop() []int {
	join := b.breakTo[len(b.breakTo)-1].node
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.continueTo = b.continueTo[:len(b.continueTo)-1]
	return []int{join}
}

// findTarget resolves a break/continue label against a target stack
// (innermost last). An empty name matches the innermost real target.
func (b *cfgBuilder) findTarget(stack []jumpTarget, name string) int {
	for i := len(stack) - 1; i >= 0; i-- {
		t := stack[i]
		if t.node < 0 {
			continue // a switch/select level that continue skips past
		}
		if name == "" || t.label == name {
			return t.node
		}
	}
	return -1
}

// walkScan applies fn to every node of each scan entry, skipping nested
// function literal bodies: a literal's statements belong to its own
// CFG, not to the enclosing function's facts.
func walkScan(scan []ast.Node, fn func(ast.Node) bool) {
	for _, root := range scan {
		ast.Inspect(root, func(n ast.Node) bool {
			if n == nil {
				return true
			}
			// The literal itself is visible (it is an expression of the
			// enclosing function) but its body is not.
			if _, ok := n.(*ast.FuncLit); ok && n != root {
				fn(n)
				return false
			}
			return fn(n)
		})
	}
}

// factSet is a dataflow fact: a set of keys (lock identities, tainted
// objects, phase markers). Keys are compared with ==.
type factSet map[any]bool

func (f factSet) clone() factSet {
	out := make(factSet, len(f))
	for k := range f {
		out[k] = true
	}
	return out
}

// union merges src into dst and reports whether dst grew.
func (f factSet) union(src factSet) bool {
	grew := false
	for k := range src {
		if !f[k] {
			f[k] = true
			grew = true
		}
	}
	return grew
}

// forward runs a forward may-analysis to fixpoint and returns the fact
// set reaching each node (before the node's own transfer). transfer
// must be a pure function of (node index, in-fact) of the gen/kill
// form: out = in − kill(n) ∪ gen(n), which with union joins guarantees
// termination.
func (c *cfg) forward(entryFact factSet, transfer func(n int, in factSet) factSet) []factSet {
	ins := make([]factSet, len(c.nodes))
	ins[c.entry] = entryFact.clone()
	work := []int{c.entry}
	inWork := make([]bool, len(c.nodes))
	inWork[c.entry] = true
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[n] = false
		out := transfer(n, ins[n])
		for _, s := range c.nodes[n].succs {
			if ins[s] == nil {
				ins[s] = out.clone()
			} else if !ins[s].union(out) {
				continue
			}
			if !inWork[s] {
				inWork[s] = true
				work = append(work, s)
			}
		}
	}
	return ins
}
