package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

// clockPkgs is the clockpath scope: the serving daemon, whose PR-3
// clock-injection seam (serve.Config.Clock) exists precisely so that
// frozen-clock tests cover every handler's latency and age metrics, and
// the remediation engine, whose only notion of time is the evaluation
// tick — a wall-clock read there would break byte-identical scenario
// replay. The cluster tier is held to the same discipline: its failover
// decisions are keyed to probe rounds (so partition scenarios replay
// byte-identically) and its only time dependencies are injected
// intervals and context deadlines, never a wall-clock read.
// The learn trainer joins for the same reason as remedy: its notion of
// time is the stream record count, and a wall-clock read would break
// byte-identical decision-log replay.
var clockPkgs = []string{
	"internal/serve",
	"internal/remedy",
	"internal/cluster",
	"internal/learn",
}

// ClockPathAnalyzer flags direct wall-clock reads — time.Now() or
// time.Since() calls — in the clock-disciplined packages. Taking
// time.Now as a value (the `if clock == nil { clock = time.Now }`
// default) IS the injection seam and stays legal; calling it directly
// bypasses the seam and makes the code untestable under a frozen clock.
func ClockPathAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "clockpath",
		Doc: "flags direct time.Now()/time.Since() calls in clock-disciplined packages " +
			"(internal/serve, internal/remedy, internal/cluster, internal/learn) outside " +
			"the clock-injection seam (binding time.Now as a default is the seam)",
		InScope: scopePackages("clockpath", clockPkgs, nil),
		Check:   checkClockPath,
	}
}

func checkClockPath(p *Package, inScope func(*ast.File) bool, report func(pos token.Pos, msg string)) {
	for _, file := range p.Files {
		if !inScope(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name := timeFunc(useOf(p.Info, call.Fun)); name != "" {
				report(call.Pos(), fmt.Sprintf(
					"direct wall-clock read time.%s() in %s; route it through an injected clock (serve.Config.Clock) or the evaluation tick",
					name, modRel(p.Path)))
			}
			return true
		})
	}
}
