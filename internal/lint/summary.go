package lint

// Call-effect summaries: the contract analyzers need one interprocedural
// fact — "may this callee block?" — so that a mutex held across
// l.flushLocked() is caught even though the file write is one call away.
// Summaries are memoized per *types.Func on the loader's shared cache,
// exactly like package loads: computed once, hit-counted, and cycle-safe
// (a recursive call observes the optimistic in-progress answer, which is
// sound for a may-analysis that only ever adds blocking sites).
//
// Summaries are allow-aware: a blocking site inside a callee that
// carries a //ssdlint:allow lockheld directive (inline or function-
// level) does not make the callee blocking. That keeps suppression
// local — the WAL's flushLocked documents once that it writes under the
// group-commit lock by design, and every caller stays clean — instead
// of forcing an allow at each call site.
//
// Function literals are excluded from summaries: a literal passed to a
// caller-controlled runner executes on that runner's schedule, and its
// lock/blocking discipline is analyzed where the literal is defined,
// as its own function body.

import (
	"go/ast"
	"go/types"
)

// fileIOMethods are method names that mean file I/O on an *os.File or
// on this module's faultfs fault-injection wrappers (whose interfaces
// mirror the os.File surface).
var fileIOMethods = map[string]bool{
	"Read": true, "ReadAt": true, "Write": true, "WriteAt": true,
	"WriteString": true, "Sync": true, "Close": true, "Seek": true,
	"Truncate": true, "ReadFrom": true, "ReadDir": true, "Stat": true,
	"Open": true, "OpenFile": true, "Create": true, "Rename": true,
	"Remove": true, "SyncDir": true, "MkdirAll": true,
}

// osBlockingFuncs are package-level os functions that hit the
// filesystem.
var osBlockingFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "ReadFile": true,
	"WriteFile": true, "Remove": true, "RemoveAll": true, "Rename": true,
	"Mkdir": true, "MkdirAll": true, "ReadDir": true, "Stat": true,
	"Lstat": true, "Truncate": true, "Chtimes": true,
}

// netBlockingNames are net functions/methods that wait on the network.
var netBlockingNames = map[string]bool{
	"Dial": true, "DialTimeout": true, "DialTCP": true, "DialUDP": true,
	"Listen": true, "ListenTCP": true, "ListenPacket": true, "Accept": true,
	"Read": true, "Write": true, "Close": true, "LookupHost": true,
	"LookupIP": true, "LookupAddr": true, "LookupCNAME": true,
}

// httpBlockingNames are net/http calls that perform a round trip or
// serve. Classification is by name, not by package alone: http.Header
// manipulation lives in the same package and must stay silent.
var httpBlockingNames = map[string]bool{
	"Do": true, "Get": true, "Post": true, "PostForm": true, "Head": true,
	"Serve": true, "ListenAndServe": true, "ListenAndServeTLS": true,
	"Shutdown": true,
}

// ioBlockingFuncs are io package conduits that block on their
// underlying reader/writer.
var ioBlockingFuncs = map[string]bool{
	"Copy": true, "CopyN": true, "CopyBuffer": true,
	"ReadAll": true, "ReadFull": true,
}

// SummaryCache memoizes per-function call effects for one Loader.
type SummaryCache struct {
	loader *Loader

	blocks     map[*types.Func]bool
	inProgress map[*types.Func]bool
	decls      map[string]map[*types.Func]*ast.FuncDecl // pkg path -> defs
	allows     map[string][]allowDirective              // pkg path -> directives

	// Computed counts summaries established by walking a body or table;
	// Hits counts memoized lookups. Tests assert on both.
	Computed, Hits int
}

func newSummaryCache(l *Loader) *SummaryCache {
	return &SummaryCache{
		loader:     l,
		blocks:     map[*types.Func]bool{},
		inProgress: map[*types.Func]bool{},
		decls:      map[string]map[*types.Func]*ast.FuncDecl{},
		allows:     map[string][]allowDirective{},
	}
}

// declOf resolves a module function to its FuncDecl and defining
// package (nil, nil when fn has no body there — interface methods).
func (c *SummaryCache) declOf(fn *types.Func) (*Package, *ast.FuncDecl) {
	if fn.Pkg() == nil || !c.loader.inModule(fn.Pkg().Path()) {
		return nil, nil
	}
	p, err := c.loader.Load(fn.Pkg().Path())
	if err != nil || p == nil {
		return nil, nil
	}
	idx, ok := c.decls[p.Path]
	if !ok {
		idx = map[*types.Func]*ast.FuncDecl{}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
						idx[obj] = fd
					}
				}
			}
		}
		c.decls[p.Path] = idx
	}
	return p, idx[fn]
}

// pkgAllows returns a package's parsed allow directives (memoized).
// Malformed directives are dropped here; the run driver reports them.
func (c *SummaryCache) pkgAllows(p *Package) []allowDirective {
	if a, ok := c.allows[p.Path]; ok {
		return a
	}
	known := map[string]bool{}
	for _, name := range AnalyzerNames() {
		known[name] = true
	}
	a, _ := collectAllows(p, known, c.loader.Rel)
	c.allows[p.Path] = a
	return a
}

// allowedAt reports whether an allow directive for analyzer covers the
// given position in p.
func (c *SummaryCache) allowedAt(p *Package, analyzer string, pos ast.Node) bool {
	position := p.Fset.Position(pos.Pos())
	probe := Finding{Analyzer: analyzer, File: c.loader.Rel(position.Filename), Line: position.Line}
	return suppressed(probe, c.pkgAllows(p))
}

// Blocks reports whether calling fn may block: on I/O, the network,
// time.Sleep, a WaitGroup, or an unguarded channel operation —
// transitively through module callees, with allow-covered sites
// excluded.
func (c *SummaryCache) Blocks(fn *types.Func) bool {
	if v, ok := c.blocks[fn]; ok {
		c.Hits++
		return v
	}
	if c.inProgress[fn] {
		// Recursion or a call cycle: the optimistic answer is sound —
		// if any path through the cycle blocks, the function that owns
		// the blocking site still reports it.
		return false
	}
	c.inProgress[fn] = true
	v := c.blocksUncached(fn)
	delete(c.inProgress, fn)
	c.blocks[fn] = v
	c.Computed++
	return v
}

func (c *SummaryCache) blocksUncached(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	if !c.loader.inModule(pkg.Path()) {
		return stdlibBlocking(fn) != ""
	}
	p, decl := c.declOf(fn)
	if decl == nil || decl.Body == nil {
		// A module interface method or bodyless declaration: the faultfs
		// wrappers are the file-I/O seam the WAL writes through, so
		// their os.File-shaped methods count as blocking.
		if modRel(pkg.Path()) == "internal/faultfs" && fileIOMethods[fn.Name()] {
			return true
		}
		return false
	}
	allows := c.pkgAllows(p)
	return c.bodyBlocks(p, decl.Body, allows)
}

// bodyBlocks walks one function body (literals excluded) looking for a
// blocking site not covered by a lockheld allow.
func (c *SummaryCache) bodyBlocks(p *Package, body *ast.BlockStmt, allows []allowDirective) bool {
	found := false
	allowed := func(n ast.Node) bool {
		position := p.Fset.Position(n.Pos())
		probe := Finding{Analyzer: "lockheld", File: c.loader.Rel(position.Filename), Line: position.Line}
		return suppressed(probe, allows)
	}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if found {
				return false
			}
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.SelectStmt:
				// A select with a default never parks; its comm clauses
				// are guards, not blocking ops. Walk only the case
				// bodies either way, and count the select itself as
				// blocking when it has no default.
				if !selectHasDefault(m) && !allowed(m) {
					found = true
					return false
				}
				for _, cs := range m.Body.List {
					if cc, ok := cs.(*ast.CommClause); ok {
						for _, s := range cc.Body {
							walk(s)
						}
					}
				}
				return false
			case *ast.SendStmt:
				if !allowed(m) {
					found = true
					return false
				}
			case *ast.UnaryExpr:
				if m.Op.String() == "<-" && !allowed(m) {
					found = true
					return false
				}
			case *ast.RangeStmt:
				if isChanExpr(p.Info, m.X) && !allowed(m) {
					found = true
					return false
				}
			case *ast.CallExpr:
				if desc := c.blockingCall(p, m); desc != "" && !allowed(m) {
					found = true
					return false
				}
			}
			return true
		})
	}
	walk(body)
	return found
}

// blockingCall classifies a call as blocking, returning a short
// description for the finding message ("" when not blocking). Calls
// through function values and unresolvable interface methods are not
// classified — the lock-held rule binds what the code names, not what a
// hook might do.
func (c *SummaryCache) blockingCall(p *Package, call *ast.CallExpr) string {
	fn, ok := useOf(p.Info, call.Fun).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	if c.loader.inModule(fn.Pkg().Path()) {
		if c.Blocks(fn) {
			return "call to " + fn.Name() + " (may block)"
		}
		return ""
	}
	return stdlibBlocking(fn)
}

// stdlibBlocking classifies a standard-library function by table.
func stdlibBlocking(fn *types.Func) string {
	path, name := fn.Pkg().Path(), fn.Name()
	recvNamed := receiverTypeName(fn)
	switch path {
	case "time":
		if name == "Sleep" {
			return "time.Sleep"
		}
	case "os":
		if recvNamed == "File" && fileIOMethods[name] {
			return "(*os.File)." + name
		}
		if recvNamed == "" && osBlockingFuncs[name] {
			return "os." + name
		}
	case "io":
		if recvNamed == "" && ioBlockingFuncs[name] {
			return "io." + name
		}
	case "net":
		if netBlockingNames[name] {
			return "net." + name
		}
	case "net/http":
		if httpBlockingNames[name] {
			return "net/http " + name
		}
	case "sync":
		// WaitGroup.Wait parks until someone else runs; Cond.Wait is
		// deliberately excluded — it releases the mutex it is
		// coordinated with, which is the opposite of holding a lock
		// across a blocking op.
		if recvNamed == "WaitGroup" && name == "Wait" {
			return "sync.WaitGroup.Wait"
		}
	}
	return ""
}

// receiverTypeName returns the bare receiver type name of a method
// ("File" for *os.File), or "" for a package-level function.
func receiverTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// selectHasDefault reports whether a select statement has a default
// clause.
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cs := range s.Body.List {
		if cc, ok := cs.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// isChanExpr reports whether e has channel type.
func isChanExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}
