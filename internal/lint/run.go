package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Options configures one linter run.
type Options struct {
	// Dir anchors module discovery and relative patterns (the process
	// working directory in the CLI).
	Dir string
	// Patterns are package patterns: ./..., ./internal/serve,
	// internal/wal/..., or full import paths.
	Patterns []string
	// JSON switches the finding output from file:line:col text to a
	// JSON array.
	JSON bool
	// BaselinePath, when set, loads the committed baseline: findings
	// matching it do not fail the run, and entries matching nothing are
	// reported as removable.
	BaselinePath string
	// WriteBaseline rewrites BaselinePath with the current findings
	// instead of failing on them.
	WriteBaseline bool
	// StrictBaseline makes stale baseline entries — entries matching no
	// current finding — fail the run, so the baseline can only shrink
	// toward its removal.
	StrictBaseline bool
	// ReportPath, when set, writes a JSON report with per-analyzer
	// finding counts (fresh findings only, after suppression and
	// baseline filtering) alongside the normal output.
	ReportPath string

	Stdout, Stderr io.Writer
}

// A Report is the machine-readable run summary written to ReportPath.
type Report struct {
	Analyzers []string       `json:"analyzers"`
	Counts    map[string]int `json:"counts"` // fresh findings per analyzer
	Total     int            `json:"total"`
	Stale     int            `json:"stale_baseline_entries"`
	Findings  []Finding      `json:"findings"`
}

// Exit codes: 0 clean, 1 findings, 2 usage or load failure.
const (
	ExitClean    = 0
	ExitFindings = 1
	ExitError    = 2
)

// Run executes the linter and returns the process exit code.
func Run(opts Options) int {
	if opts.Stdout == nil {
		opts.Stdout = os.Stdout
	}
	if opts.Stderr == nil {
		opts.Stderr = os.Stderr
	}
	fail := func(err error) int {
		fmt.Fprintf(opts.Stderr, "ssdlint: %v\n", err)
		return ExitError
	}
	if opts.WriteBaseline && opts.BaselinePath == "" {
		return fail(fmt.Errorf("-write-baseline requires -baseline"))
	}
	if opts.StrictBaseline && opts.BaselinePath == "" {
		return fail(fmt.Errorf("-strict-baseline requires -baseline"))
	}
	if len(opts.Patterns) == 0 {
		return fail(fmt.Errorf("no packages named; try ./..."))
	}
	root, module, err := FindModule(opts.Dir)
	if err != nil {
		return fail(err)
	}
	loader := NewLoader(root, module)
	paths, err := loader.ExpandPatterns(opts.Dir, opts.Patterns)
	if err != nil {
		return fail(err)
	}
	if len(paths) == 0 {
		return fail(fmt.Errorf("no packages matched %v", opts.Patterns))
	}

	analyzers := Analyzers()
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var findings []Finding
	for _, path := range paths {
		p, err := loader.Load(path)
		if err != nil {
			return fail(err)
		}
		raw := run(p, analyzers, loader.Rel)
		allows, misuse := collectAllows(p, known, loader.Rel)
		for _, f := range raw {
			if !suppressed(f, allows) {
				findings = append(findings, f)
			}
		}
		// Directive misuse is never suppressible: a typo in an allow
		// comment must not be able to silence itself.
		findings = append(findings, misuse...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})

	if opts.WriteBaseline {
		if err := os.WriteFile(opts.BaselinePath, FormatBaseline(findings), 0o644); err != nil {
			return fail(err)
		}
		fmt.Fprintf(opts.Stderr, "ssdlint: wrote %d baseline entr%s to %s\n",
			len(findings), plural(len(findings), "y", "ies"), opts.BaselinePath)
		return ExitClean
	}

	fresh := findings
	staleCount := 0
	if opts.BaselinePath != "" {
		baseline, err := LoadBaseline(opts.BaselinePath)
		if err != nil {
			return fail(err)
		}
		var stale []string
		fresh, stale = baseline.Filter(findings)
		staleCount = len(stale)
		for _, s := range stale {
			fmt.Fprintf(opts.Stderr, "ssdlint: stale baseline entry (removable): %s\n", s)
		}
	}

	if opts.ReportPath != "" {
		if err := writeReport(opts.ReportPath, fresh, staleCount); err != nil {
			return fail(err)
		}
	}

	if opts.JSON {
		out := fresh
		if out == nil {
			out = []Finding{}
		}
		enc := json.NewEncoder(opts.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return fail(err)
		}
	} else {
		for _, f := range fresh {
			fmt.Fprintln(opts.Stdout, f)
		}
	}
	if len(fresh) > 0 {
		fmt.Fprintf(opts.Stderr, "ssdlint: %d finding%s\n", len(fresh), plural(len(fresh), "", "s"))
		return ExitFindings
	}
	if opts.StrictBaseline && staleCount > 0 {
		fmt.Fprintf(opts.Stderr, "ssdlint: %d stale baseline entr%s under -strict-baseline; "+
			"remove them (or rerun with -write-baseline)\n", staleCount, plural(staleCount, "y", "ies"))
		return ExitFindings
	}
	return ExitClean
}

// writeReport writes the per-analyzer summary consumed by CI.
func writeReport(path string, fresh []Finding, stale int) error {
	r := Report{
		Analyzers: AnalyzerNames(),
		Counts:    map[string]int{},
		Total:     len(fresh),
		Stale:     stale,
		Findings:  fresh,
	}
	if r.Findings == nil {
		r.Findings = []Finding{}
	}
	for _, name := range r.Analyzers {
		r.Counts[name] = 0
	}
	for _, f := range fresh {
		r.Counts[f.Analyzer]++
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
