package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// loadTestModule writes files as a temp module and loads one package
// through a fresh loader, returning the loader for accounting asserts.
func loadTestModule(t *testing.T, files map[string]string, pkg string) (*Loader, *Package) {
	t.Helper()
	root := writeTestModule(t, files)
	modRoot, module, err := FindModule(root)
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader(modRoot, module)
	p, err := loader.Load(module + "/" + pkg)
	if err != nil {
		t.Fatal(err)
	}
	return loader, p
}

// TestSummaryTriggersReentrantLoad pins the loader accounting under the
// summary pass: analyzing internal/wal forces a load of the helper
// package its calls summarize into, and a second explicit load of that
// helper is a cache hit, not a re-typecheck.
func TestSummaryTriggersReentrantLoad(t *testing.T) {
	files := map[string]string{
		"internal/wal/wal.go": `package wal

import (
	"sync"

	"tmpmod/internal/helper"
)

type Log struct{ mu sync.Mutex }

func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return helper.WriteOut(nil)
}
`,
		"internal/helper/helper.go": `package helper

import "os"

func WriteOut(b []byte) error { return os.WriteFile("x", b, 0o644) }
`,
	}
	loader, p := loadTestModule(t, files, "internal/wal")
	// Loading wal type-checks its import, so the helper is already in:
	// two real loads, no cache traffic yet.
	if loader.Loads != 2 || loader.CacheHits != 0 {
		t.Fatalf("before analysis: Loads=%d CacheHits=%d, want 2/0", loader.Loads, loader.CacheHits)
	}
	typechecked := loader.Loads - loader.CacheHits

	findings := run(p, Analyzers(), loader.Rel)
	var got []string
	for _, f := range findings {
		got = append(got, f.String())
	}
	joined := strings.Join(got, "\n")
	if !strings.Contains(joined, "lockheld") || !strings.Contains(joined, "WriteOut") {
		t.Fatalf("expected a lockheld finding for the WriteOut call, got:\n%s", joined)
	}

	// Summarizing helper.WriteOut re-requested internal/helper; that
	// re-entrant load must be a cache hit, never a second typecheck.
	if loader.CacheHits == 0 {
		t.Fatalf("summary pass did not go through the loader: CacheHits=%d", loader.CacheHits)
	}
	if misses := loader.Loads - loader.CacheHits; misses != typechecked {
		t.Fatalf("summary pass re-typechecked a package: %d real loads, want %d", misses, typechecked)
	}
	if loader.Summaries.Computed == 0 {
		t.Fatalf("no summaries computed")
	}

	// Re-analyzing hits the memoized summaries instead of recomputing.
	computed := loader.Summaries.Computed
	summaryHits := loader.Summaries.Hits
	_ = run(p, Analyzers(), loader.Rel)
	if loader.Summaries.Computed != computed {
		t.Fatalf("second analysis recomputed summaries: %d -> %d", computed, loader.Summaries.Computed)
	}
	if loader.Summaries.Hits <= summaryHits {
		t.Fatalf("second analysis did not hit the summary cache: Hits=%d (was %d)",
			loader.Summaries.Hits, summaryHits)
	}
}

// TestSummaryCycleTerminates pins the cycle seed: mutually recursive
// functions that never block must summarize as non-blocking, and the
// computation must terminate.
func TestSummaryCycleTerminates(t *testing.T) {
	code, stdout, _ := runOnModule(t, map[string]string{
		"internal/wal/cycle.go": `package wal

import "sync"

type Log struct{ mu sync.Mutex }

func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}

func (l *Log) Check(n int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return even(n)
}
`,
	}, Options{})
	if code != ExitClean {
		t.Fatalf("exit = %d, want clean (pure recursion is not blocking)\n%s", code, stdout)
	}
}

// TestSummaryCycleWithBlocking is the other half: a recursive pair
// where one member blocks must mark the whole cycle blocking.
func TestSummaryCycleWithBlocking(t *testing.T) {
	code, stdout, _ := runOnModule(t, map[string]string{
		"internal/wal/cycle.go": `package wal

import (
	"os"
	"sync"
)

type Log struct{ mu sync.Mutex }

func ping(n int) error {
	if n == 0 {
		return os.WriteFile("x", nil, 0o644)
	}
	return pong(n - 1)
}

func pong(n int) error { return ping(n - 1) }

func (l *Log) Check(n int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return ping(n)
}
`,
	}, Options{})
	if code != ExitFindings {
		t.Fatalf("exit = %d, want findings (blocking cycle under lock)\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "lockheld") || !strings.Contains(stdout, "ping") {
		t.Fatalf("expected lockheld finding on the ping call:\n%s", stdout)
	}
}

// TestContractAnalyzersJSONDeterministic runs the four dataflow
// analyzers over their committed fixtures at different GOMAXPROCS
// settings and requires byte-identical -json output: finding order and
// content must not depend on scheduling.
func TestContractAnalyzersJSONDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the real fixtures repeatedly")
	}
	patterns := []string{
		"./testdata/hotalloc",
		"./testdata/poolescape",
		"./testdata/lockheld",
		"./testdata/goroleak",
	}
	runJSON := func() string {
		var stdout, stderr bytes.Buffer
		code := Run(Options{
			Dir:      ".",
			Patterns: patterns,
			JSON:     true,
			Stdout:   &stdout,
			Stderr:   &stderr,
		})
		if code != ExitFindings {
			t.Fatalf("exit = %d, want findings from the fixtures\n%s", code, stderr.String())
		}
		return stdout.String()
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var outputs []string
	for _, procs := range []int{1, 2, prev} {
		runtime.GOMAXPROCS(procs)
		outputs = append(outputs, runJSON())
	}
	for i := 1; i < len(outputs); i++ {
		if outputs[i] != outputs[0] {
			t.Fatalf("-json output differs across GOMAXPROCS runs:\n--- run 0 ---\n%s\n--- run %d ---\n%s",
				outputs[0], i, outputs[i])
		}
	}

	// Every one of the four analyzers must actually appear: an empty
	// determinism check proves nothing.
	var findings []Finding
	if err := json.Unmarshal([]byte(outputs[0]), &findings); err != nil {
		t.Fatalf("output is not a JSON finding array: %v", err)
	}
	seen := map[string]bool{}
	for _, f := range findings {
		seen[f.Analyzer] = true
	}
	for _, name := range []string{"hotalloc", "poolescape", "lockheld", "goroleak"} {
		if !seen[name] {
			t.Errorf("no %s finding in the fixture run", name)
		}
	}
}

// TestStrictBaselineFailsOnStaleEntries: under -strict-baseline a
// baseline entry matching no current finding is an error, so fixed
// findings must be removed from the committed file.
func TestStrictBaselineFailsOnStaleEntries(t *testing.T) {
	root := writeTestModule(t, map[string]string{
		"internal/fleetsim/clock.go": `package fleetsim

import "time"

func Stamp() time.Time { return time.Now() }
`,
	})
	baseline := filepath.Join(root, ".ssdlint-baseline")
	runHere := func(opts Options) (int, string) {
		var stdout, stderr bytes.Buffer
		opts.Dir = root
		opts.Patterns = []string{"./..."}
		opts.BaselinePath = baseline
		opts.Stdout = &stdout
		opts.Stderr = &stderr
		return Run(opts), stderr.String()
	}

	if code, stderr := runHere(Options{WriteBaseline: true}); code != ExitClean {
		t.Fatalf("write-baseline exit = %d\n%s", code, stderr)
	}
	// Baselined finding: clean either way.
	if code, stderr := runHere(Options{StrictBaseline: true}); code != ExitClean {
		t.Fatalf("exit = %d, want clean while the finding is live\n%s", code, stderr)
	}

	// Fix the finding; the baseline entry goes stale.
	clean := `package fleetsim

import "time"

func Stamp(now func() time.Time) time.Time { return now() }
`
	if err := os.WriteFile(filepath.Join(root, "internal/fleetsim/clock.go"), []byte(clean), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, stderr := runHere(Options{}); code != ExitClean {
		t.Fatalf("exit = %d, want clean without -strict-baseline (stale is a warning)\n%s", code, stderr)
	}
	code, stderr := runHere(Options{StrictBaseline: true})
	if code != ExitFindings {
		t.Fatalf("exit = %d, want findings under -strict-baseline with a stale entry\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "stale baseline") {
		t.Fatalf("stale entry not reported:\n%s", stderr)
	}
}

// TestReportCounts pins the LINT_REPORT.json shape CI uploads:
// per-analyzer counts over fresh findings.
func TestReportCounts(t *testing.T) {
	root := writeTestModule(t, map[string]string{
		"internal/fleetsim/clock.go": `package fleetsim

import "time"

func Stamp() time.Time { return time.Now() }
`,
	})
	reportPath := filepath.Join(root, "LINT_REPORT.json")
	var stdout, stderr bytes.Buffer
	code := Run(Options{
		Dir:        root,
		Patterns:   []string{"./..."},
		ReportPath: reportPath,
		Stdout:     &stdout,
		Stderr:     &stderr,
	})
	if code != ExitFindings {
		t.Fatalf("exit = %d, want findings\n%s", code, stderr.String())
	}
	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Counts["nondeterminism"] != 1 || rep.Total != 1 {
		t.Fatalf("counts = %v total = %d, want nondeterminism:1 total:1", rep.Counts, rep.Total)
	}
	// Every analyzer appears in the counts map, zero or not, so CI can
	// chart them without guessing the key set.
	for _, name := range AnalyzerNames() {
		if _, ok := rep.Counts[name]; !ok {
			t.Errorf("analyzer %s missing from report counts", name)
		}
	}
}

// TestHotAllocCatchesPatchedServeHotPath is the acceptance check for
// the scope table: a deliberate allocation added to a function *named
// like* the real hot path — Server.processBinBatch in a package whose
// module-relative path is internal/serve — is caught with no annotation
// in sight.
func TestHotAllocCatchesPatchedServeHotPath(t *testing.T) {
	code, stdout, _ := runOnModule(t, map[string]string{
		"internal/serve/bin.go": `package serve

import "context"

type binState struct{ resp []byte }

type binResult struct{ code int }

type Server struct{}

func (s *Server) processBinBatch(ctx context.Context, body []byte, st *binState) binResult {
	tmp := make([]byte, len(body))
	copy(tmp, body)
	st.resp = st.resp[:0]
	return binResult{code: 202}
}
`,
	}, Options{})
	if code != ExitFindings {
		t.Fatalf("exit = %d, want findings (deliberate make on the hot path)\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "hotalloc") || !strings.Contains(stdout, "make allocates") {
		t.Fatalf("expected a hotalloc make finding:\n%s", stdout)
	}
}

// TestPoolEscapeCatchesPatchedLeak is the companion acceptance check: a
// pooled buffer stored into a package variable in a patched serve file
// is caught by poolescape.
func TestPoolEscapeCatchesPatchedLeak(t *testing.T) {
	code, stdout, _ := runOnModule(t, map[string]string{
		"internal/serve/pool.go": `package serve

import "sync"

var bufs = sync.Pool{New: func() any { return make([]byte, 0, 64) }}

var lastReply []byte

func render(n int) int {
	b := bufs.Get().([]byte)
	b = append(b[:0], byte(n))
	lastReply = b
	bufs.Put(b)
	return len(lastReply)
}
`,
	}, Options{})
	if code != ExitFindings {
		t.Fatalf("exit = %d, want findings (pooled buffer escapes to a package var)\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "poolescape") || !strings.Contains(stdout, "package variable") {
		t.Fatalf("expected a poolescape finding:\n%s", stdout)
	}
}

// TestBenchAndHandlerShareBinStateHelpers guards the satellite wiring
// in the real tree: the alloc benchmark must go through the same
// acquire/release/run helpers as the HTTP handler, so the benchmark
// measures the handler's actual pool discipline.
func TestBenchAndHandlerShareBinStateHelpers(t *testing.T) {
	for file, wants := range map[string][]string{
		"../serve/bin.go":               {"s.acquireBinState()", "s.releaseBinState(st)", "s.runBinBatch("},
		"../serve/bench_ingest_test.go": {"s.acquireBinState()", "s.releaseBinState(st)", "s.runBinBatch("},
	} {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range wants {
			if !bytes.Contains(data, []byte(want)) {
				t.Errorf("%s does not use %s", file, want)
			}
		}
		if strings.Contains(file, "bench") && bytes.Contains(data, []byte("binStates.Get")) {
			t.Errorf("%s still reaches into the pool directly", file)
		}
	}
}
