package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// allowDirective is one parsed //ssdlint:allow comment.
type allowDirective struct {
	File     string // module-relative
	Line     int
	Analyzer string
	Reason   string
	// EndLine extends the directive's coverage: when the directive sits
	// in a function declaration's doc comment, it covers every line of
	// that function's body (Line..EndLine). Zero for ordinary inline
	// directives, which cover only their own line and the next.
	EndLine int
}

const allowPrefix = "//ssdlint:allow"

// MetaAnalyzer is the pseudo-analyzer name used for diagnostics about
// ssdlint's own directives (malformed allow comments). Meta findings
// are never suppressible — a wrong analyzer name in an allow comment
// must fail loudly, not silence itself.
const MetaAnalyzer = "ssdlint"

// collectAllows scans a package's comments for allow directives,
// returning both the well-formed directives and meta findings for the
// malformed ones: an unknown analyzer name or a missing reason is an
// error, so a typo cannot silently turn a suppression into a no-op.
func collectAllows(p *Package, known map[string]bool, rel func(string) string) (allows []allowDirective, misuse []Finding) {
	report := func(pos token.Pos, msg string) {
		position := p.Fset.Position(pos)
		misuse = append(misuse, Finding{
			Analyzer: MetaAnalyzer,
			Pos:      position,
			File:     rel(position.Filename),
			Line:     position.Line,
			Col:      position.Column,
			Message:  msg,
		})
	}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(c.Pos(), "allow directive names no analyzer; want //ssdlint:allow <analyzer> <reason>")
					continue
				}
				name := fields[0]
				if !known[name] {
					report(c.Pos(), fmt.Sprintf("allow directive names unknown analyzer %q; known: %s",
						name, strings.Join(AnalyzerNames(), ", ")))
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), name))
				if reason == "" {
					report(c.Pos(), fmt.Sprintf("allow directive for %q gives no reason; suppressions must be explained", name))
					continue
				}
				position := p.Fset.Position(c.Pos())
				allows = append(allows, allowDirective{
					File:     rel(position.Filename),
					Line:     position.Line,
					Analyzer: name,
					Reason:   reason,
				})
			}
		}
	}
	extendFuncLevelAllows(p, rel, allows)
	return allows, misuse
}

// extendFuncLevelAllows widens directives that live in a function
// declaration's doc comment to cover the whole declaration: helpers
// like the WAL's flushLocked are blocking-under-lock by documented
// design, and one reasoned directive on the declaration beats one per
// line. The allow-aware call summaries rely on the same range.
func extendFuncLevelAllows(p *Package, rel func(string) string, allows []allowDirective) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			docStart := p.Fset.Position(fd.Doc.Pos()).Line
			declLine := p.Fset.Position(fd.Pos()).Line
			endLine := p.Fset.Position(fd.End()).Line
			file := rel(p.Fset.Position(fd.Pos()).Filename)
			for i := range allows {
				a := &allows[i]
				if a.File == file && a.Line >= docStart && a.Line <= declLine {
					a.EndLine = endLine
				}
			}
		}
	}
}

// suppressed reports whether a finding is covered by an allow
// directive: same file, same analyzer, and the directive sits on the
// finding's line (trailing comment), the line above (standalone
// comment), or — for directives in a function's doc comment — anywhere
// in that function's declaration.
func suppressed(f Finding, allows []allowDirective) bool {
	for _, a := range allows {
		if a.Analyzer != f.Analyzer || a.File != f.File {
			continue
		}
		if a.Line == f.Line || a.Line == f.Line-1 {
			return true
		}
		if a.EndLine > 0 && a.Line <= f.Line && f.Line <= a.EndLine {
			return true
		}
	}
	return false
}
