package lint

import (
	"fmt"
	"go/token"
	"strings"
)

// allowDirective is one parsed //ssdlint:allow comment.
type allowDirective struct {
	File     string // module-relative
	Line     int
	Analyzer string
	Reason   string
}

const allowPrefix = "//ssdlint:allow"

// MetaAnalyzer is the pseudo-analyzer name used for diagnostics about
// ssdlint's own directives (malformed allow comments). Meta findings
// are never suppressible — a wrong analyzer name in an allow comment
// must fail loudly, not silence itself.
const MetaAnalyzer = "ssdlint"

// collectAllows scans a package's comments for allow directives,
// returning both the well-formed directives and meta findings for the
// malformed ones: an unknown analyzer name or a missing reason is an
// error, so a typo cannot silently turn a suppression into a no-op.
func collectAllows(p *Package, known map[string]bool, rel func(string) string) (allows []allowDirective, misuse []Finding) {
	report := func(pos token.Pos, msg string) {
		position := p.Fset.Position(pos)
		misuse = append(misuse, Finding{
			Analyzer: MetaAnalyzer,
			Pos:      position,
			File:     rel(position.Filename),
			Line:     position.Line,
			Col:      position.Column,
			Message:  msg,
		})
	}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(c.Pos(), "allow directive names no analyzer; want //ssdlint:allow <analyzer> <reason>")
					continue
				}
				name := fields[0]
				if !known[name] {
					report(c.Pos(), fmt.Sprintf("allow directive names unknown analyzer %q; known: %s",
						name, strings.Join(AnalyzerNames(), ", ")))
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), name))
				if reason == "" {
					report(c.Pos(), fmt.Sprintf("allow directive for %q gives no reason; suppressions must be explained", name))
					continue
				}
				position := p.Fset.Position(c.Pos())
				allows = append(allows, allowDirective{
					File:     rel(position.Filename),
					Line:     position.Line,
					Analyzer: name,
					Reason:   reason,
				})
			}
		}
	}
	return allows, misuse
}

// suppressed reports whether a finding is covered by an allow
// directive: same file, same analyzer, and the directive sits on the
// finding's line (trailing comment) or the line above (standalone
// comment).
func suppressed(f Finding, allows []allowDirective) bool {
	for _, a := range allows {
		if a.Analyzer == f.Analyzer && a.File == f.File &&
			(a.Line == f.Line || a.Line == f.Line-1) {
			return true
		}
	}
	return false
}
