package lint

import (
	"bytes"
	"strings"
	"testing"
)

func runOnModule(t *testing.T, files map[string]string, opts Options) (int, string, string) {
	t.Helper()
	root := writeTestModule(t, files)
	var stdout, stderr bytes.Buffer
	opts.Dir = root
	if opts.Patterns == nil {
		opts.Patterns = []string{"./..."}
	}
	opts.Stdout = &stdout
	opts.Stderr = &stderr
	return Run(opts), stdout.String(), stderr.String()
}

func TestAllowSuppressesFinding(t *testing.T) {
	code, stdout, stderr := runOnModule(t, map[string]string{
		"internal/fleetsim/clock.go": `package fleetsim

import "time"

func Stamp() time.Time {
	//ssdlint:allow nondeterminism boot banner only, never feeds the simulation
	return time.Now()
}
`,
	}, Options{})
	if code != ExitClean {
		t.Fatalf("exit = %d, want clean\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
}

func TestAllowTrailingComment(t *testing.T) {
	code, stdout, _ := runOnModule(t, map[string]string{
		"internal/fleetsim/clock.go": `package fleetsim

import "time"

func Stamp() time.Time {
	return time.Now() //ssdlint:allow nondeterminism boot banner only
}
`,
	}, Options{})
	if code != ExitClean {
		t.Fatalf("exit = %d, want clean\nstdout: %s", code, stdout)
	}
}

// TestAllowWrongAnalyzerStillFails is the contract the satellite task
// names: a typo'd analyzer name must not silently suppress anything —
// the original finding survives AND the malformed directive is itself
// a finding.
func TestAllowWrongAnalyzerStillFails(t *testing.T) {
	code, stdout, _ := runOnModule(t, map[string]string{
		"internal/fleetsim/clock.go": `package fleetsim

import "time"

func Stamp() time.Time {
	//ssdlint:allow nondetreminism oops, typo in the analyzer name
	return time.Now()
}
`,
	}, Options{})
	if code != ExitFindings {
		t.Fatalf("exit = %d, want findings", code)
	}
	if !strings.Contains(stdout, "unknown analyzer") {
		t.Errorf("malformed directive not reported:\n%s", stdout)
	}
	if !strings.Contains(stdout, "wall clock read") {
		t.Errorf("original finding was suppressed by a typo'd directive:\n%s", stdout)
	}
}

func TestAllowWithoutReasonFails(t *testing.T) {
	code, stdout, _ := runOnModule(t, map[string]string{
		"internal/fleetsim/clock.go": `package fleetsim

import "time"

func Stamp() time.Time {
	//ssdlint:allow nondeterminism
	return time.Now()
}
`,
	}, Options{})
	if code != ExitFindings {
		t.Fatalf("exit = %d, want findings", code)
	}
	if !strings.Contains(stdout, "gives no reason") {
		t.Errorf("reasonless directive not reported:\n%s", stdout)
	}
}

func TestAllowWrongLineDoesNotSuppress(t *testing.T) {
	code, stdout, _ := runOnModule(t, map[string]string{
		"internal/fleetsim/clock.go": `package fleetsim

import "time"

//ssdlint:allow nondeterminism directive is three lines above the read
// padding
// padding
func Stamp() time.Time { return time.Now() }
`,
	}, Options{})
	if code != ExitFindings {
		t.Fatalf("exit = %d, want findings (directive too far from the read)\n%s", code, stdout)
	}
}

func TestAllowForOtherAnalyzerDoesNotSuppress(t *testing.T) {
	code, stdout, _ := runOnModule(t, map[string]string{
		"internal/fleetsim/clock.go": `package fleetsim

import "time"

func Stamp() time.Time {
	//ssdlint:allow maporder wrong analyzer for this finding
	return time.Now()
}
`,
	}, Options{})
	if code != ExitFindings {
		t.Fatalf("exit = %d, want findings: an allow for a different analyzer must not suppress\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "wall clock read") {
		t.Errorf("expected the nondeterminism finding to survive:\n%s", stdout)
	}
}
