package lint

import (
	"bytes"
	"strings"
	"testing"
)

func runOnModule(t *testing.T, files map[string]string, opts Options) (int, string, string) {
	t.Helper()
	root := writeTestModule(t, files)
	var stdout, stderr bytes.Buffer
	opts.Dir = root
	if opts.Patterns == nil {
		opts.Patterns = []string{"./..."}
	}
	opts.Stdout = &stdout
	opts.Stderr = &stderr
	return Run(opts), stdout.String(), stderr.String()
}

func TestAllowSuppressesFinding(t *testing.T) {
	code, stdout, stderr := runOnModule(t, map[string]string{
		"internal/fleetsim/clock.go": `package fleetsim

import "time"

func Stamp() time.Time {
	//ssdlint:allow nondeterminism boot banner only, never feeds the simulation
	return time.Now()
}
`,
	}, Options{})
	if code != ExitClean {
		t.Fatalf("exit = %d, want clean\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
}

func TestAllowTrailingComment(t *testing.T) {
	code, stdout, _ := runOnModule(t, map[string]string{
		"internal/fleetsim/clock.go": `package fleetsim

import "time"

func Stamp() time.Time {
	return time.Now() //ssdlint:allow nondeterminism boot banner only
}
`,
	}, Options{})
	if code != ExitClean {
		t.Fatalf("exit = %d, want clean\nstdout: %s", code, stdout)
	}
}

// TestAllowWrongAnalyzerStillFails is the contract the satellite task
// names: a typo'd analyzer name must not silently suppress anything —
// the original finding survives AND the malformed directive is itself
// a finding.
func TestAllowWrongAnalyzerStillFails(t *testing.T) {
	code, stdout, _ := runOnModule(t, map[string]string{
		"internal/fleetsim/clock.go": `package fleetsim

import "time"

func Stamp() time.Time {
	//ssdlint:allow nondetreminism oops, typo in the analyzer name
	return time.Now()
}
`,
	}, Options{})
	if code != ExitFindings {
		t.Fatalf("exit = %d, want findings", code)
	}
	if !strings.Contains(stdout, "unknown analyzer") {
		t.Errorf("malformed directive not reported:\n%s", stdout)
	}
	if !strings.Contains(stdout, "wall clock read") {
		t.Errorf("original finding was suppressed by a typo'd directive:\n%s", stdout)
	}
}

func TestAllowWithoutReasonFails(t *testing.T) {
	code, stdout, _ := runOnModule(t, map[string]string{
		"internal/fleetsim/clock.go": `package fleetsim

import "time"

func Stamp() time.Time {
	//ssdlint:allow nondeterminism
	return time.Now()
}
`,
	}, Options{})
	if code != ExitFindings {
		t.Fatalf("exit = %d, want findings", code)
	}
	if !strings.Contains(stdout, "gives no reason") {
		t.Errorf("reasonless directive not reported:\n%s", stdout)
	}
}

func TestAllowWrongLineDoesNotSuppress(t *testing.T) {
	// A detached directive — blank line between it and the function, so
	// it is not the function's doc comment — must not suppress anything.
	// (Inside a doc comment it would be a deliberate function-level
	// allow; see TestFuncLevelAllowCoversBody.)
	code, stdout, _ := runOnModule(t, map[string]string{
		"internal/fleetsim/clock.go": `package fleetsim

import "time"

//ssdlint:allow nondeterminism directive is detached from the function below

func Stamp() time.Time { return time.Now() }
`,
	}, Options{})
	if code != ExitFindings {
		t.Fatalf("exit = %d, want findings (directive detached from the read)\n%s", code, stdout)
	}
}

func TestFuncLevelAllowCoversBody(t *testing.T) {
	// A directive inside the function's doc comment is a function-level
	// allow: it covers every finding of that analyzer in the body, even
	// lines far from the directive.
	code, stdout, _ := runOnModule(t, map[string]string{
		"internal/fleetsim/clock.go": `package fleetsim

import "time"

// Stamp reads the wall clock on purpose.
//
//ssdlint:allow nondeterminism test fixture: whole function runs off-pipeline
func Stamp() time.Time {
	a := time.Now()
	b := time.Now()
	return a.Add(time.Since(b))
}
`,
	}, Options{})
	if code != ExitClean {
		t.Fatalf("exit = %d, want clean (doc-comment directive covers the body)\n%s", code, stdout)
	}
}

func TestAllowForOtherAnalyzerDoesNotSuppress(t *testing.T) {
	code, stdout, _ := runOnModule(t, map[string]string{
		"internal/fleetsim/clock.go": `package fleetsim

import "time"

func Stamp() time.Time {
	//ssdlint:allow maporder wrong analyzer for this finding
	return time.Now()
}
`,
	}, Options{})
	if code != ExitFindings {
		t.Fatalf("exit = %d, want findings: an allow for a different analyzer must not suppress\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "wall clock read") {
		t.Errorf("expected the nondeterminism finding to survive:\n%s", stdout)
	}
}
