// Package ssdfail is a reproduction of "SSD Failures in the Field:
// Symptoms, Causes, and Prediction Models" (Alter, Xue, Dimnaku, Smirni —
// SC '19) as a Go library.
//
// The paper's proprietary Google trace is replaced by a calibrated fleet
// simulator (internal/fleetsim); everything downstream — the failure
// timeline reconstruction (internal/failure), the characterization
// statistics (internal/stats), the feature pipeline (internal/dataset),
// the six classifiers (internal/ml/...), and the evaluation harness
// (internal/eval) — is implemented from scratch on the standard library.
//
// Start with internal/core for the high-level API, cmd/ssdreport to
// regenerate every table and figure of the paper, and bench_test.go in
// this directory for per-experiment benchmarks. See README.md, DESIGN.md
// and EXPERIMENTS.md.
package ssdfail
