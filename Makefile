GO ?= go

.PHONY: all build test race lint lint-contracts fmt vet baseline remedy-scenarios cluster-chaos train-loop

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -shuffle=on ./...

# Static analysis: the determinism/durability contract checkers.
# Exits nonzero on any finding not fixed, //ssdlint:allow-ed, or
# parked in .ssdlint-baseline.
lint:
	$(GO) run ./cmd/ssdlint -baseline .ssdlint-baseline -strict-baseline ./...

# The dataflow contract wall: runs the four CFG-based analyzers over
# their fixture packages (each must fail with exactly its want-annotated
# findings), the CFG/summary unit tests, and the full-module clean
# check, then writes LINT_REPORT.json with per-analyzer counts.
lint-contracts:
	$(GO) test -count=1 -run 'TestCFG|TestSummary|TestAnalyzerFixtures|TestFixturesFailViaCLI|TestContractAnalyzers|TestMainModuleIsClean|TestStrictBaseline|TestReportCounts|TestHotAllocCatches|TestPoolEscapeCatches' ./internal/lint/
	$(GO) run ./cmd/ssdlint -baseline .ssdlint-baseline -strict-baseline -report LINT_REPORT.json ./...

# Regenerate the baseline. Only for adopting the tool on a tree with
# known findings; the committed baseline is empty and should stay so.
baseline:
	$(GO) run ./cmd/ssdlint -baseline .ssdlint-baseline -write-baseline ./...

# Replay every committed remediation scenario at two GOMAXPROCS
# settings and diff the event logs against each other and the committed
# goldens. Regenerate goldens after an intentional engine change with:
#   go test ./internal/remedy/ -run Golden -update
remedy-scenarios:
	$(GO) build -o /tmp/ssdremedy ./cmd/ssdremedy
	@set -e; for s in scenarios/*.json; do \
		name=$$(basename $$s .json); \
		GOMAXPROCS=1 /tmp/ssdremedy -scenario $$s -quiet -out /tmp/$$name.p1.eventlog; \
		GOMAXPROCS=4 /tmp/ssdremedy -scenario $$s -quiet -out /tmp/$$name.p4.eventlog; \
		diff -u /tmp/$$name.p1.eventlog /tmp/$$name.p4.eventlog; \
		diff -u scenarios/golden/$$name.eventlog /tmp/$$name.p1.eventlog; \
		echo "$$name: OK"; \
	done

# The clustered failure drill: kill -9 + network partition mid-run
# behind ssdrouter, zero accepted-record loss verified through the
# router, conformance report written to BENCH_cluster.json.
cluster-chaos:
	SSDFAIL_CLUSTER_REPORT=$(CURDIR)/BENCH_cluster.json \
		$(GO) test -race -count=1 -run 'TestClusterChaos|TestReadinessGate|TestRouter|TestFollower' ./internal/cluster/

# The continuous-learning drill: ssdload drives a live ssdserved with a
# drifting fleet, the WAL-tailing trainer detects the shift, retrains,
# and promotes through POST /v1/model/reload; a crippled challenger is
# then rejected. Runs under -race at two GOMAXPROCS settings (the
# decision log and retrained models must be byte-identical), diffs the
# committed golden, and writes BENCH_learn.json.
train-loop:
	GOMAXPROCS=1 $(GO) test -race -count=1 ./internal/learn/
	SSDFAIL_LEARN_REPORT=$(CURDIR)/BENCH_learn.json \
		GOMAXPROCS=4 $(GO) test -race -count=1 ./internal/learn/

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...
