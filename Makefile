GO ?= go

.PHONY: all build test race lint fmt vet baseline

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -shuffle=on ./...

# Static analysis: the determinism/durability contract checkers.
# Exits nonzero on any finding not fixed, //ssdlint:allow-ed, or
# parked in .ssdlint-baseline.
lint:
	$(GO) run ./cmd/ssdlint -baseline .ssdlint-baseline ./...

# Regenerate the baseline. Only for adopting the tool on a tree with
# known findings; the committed baseline is empty and should stay so.
baseline:
	$(GO) run ./cmd/ssdlint -baseline .ssdlint-baseline -write-baseline ./...

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...
