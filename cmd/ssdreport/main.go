// Command ssdreport regenerates every table and figure of the paper on a
// simulated fleet and writes the full paper-vs-measured comparison to a
// markdown file (EXPERIMENTS.md by default), printing progress to
// stderr.
//
// Usage:
//
//	ssdreport [-out EXPERIMENTS.md] [-drives 300] [-seed 42]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"time"

	"ssdfail/internal/experiments"
	"ssdfail/internal/report"
)

func main() {
	var (
		out     = flag.String("out", "EXPERIMENTS.md", "output markdown path")
		seed    = flag.Uint64("seed", 42, "simulation seed")
		drives  = flag.Int("drives", 300, "drives per model")
		horizon = flag.Int("horizon", 2190, "horizon in days")
		folds   = flag.Int("folds", 5, "cross-validation folds")
		treesN  = flag.Int("trees", 100, "random forest size")
		workers = flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Seed = *seed
	cfg.DrivesPerModel = *drives
	cfg.HorizonDays = int32(*horizon)
	cfg.CVFolds = *folds
	cfg.ForestTrees = *treesN
	cfg.Workers = *workers

	start := time.Now()
	progress("generating fleet (%d drives/model, %d-day horizon, seed %d)...",
		cfg.DrivesPerModel, cfg.HorizonDays, cfg.Seed)
	ctx, err := experiments.NewContext(cfg)
	if err != nil {
		fatal(err)
	}
	progress("fleet ready: %d drives, %d drive-days, %d swaps",
		len(ctx.Fleet.Drives), ctx.Fleet.DriveDays(), len(ctx.An.Events))

	var buf bytes.Buffer
	fmt.Fprintf(&buf, "# EXPERIMENTS — paper vs. measured\n\n")
	fmt.Fprintf(&buf, "Reproduction of every table and figure in \"SSD Failures in the Field\" (SC '19)\n")
	fmt.Fprintf(&buf, "on a synthetic fleet (see DESIGN.md §2 for the data substitution).\n\n")
	fmt.Fprintf(&buf, "- generated: %s\n- seed: %d\n- drives per model: %d\n- horizon: %d days\n",
		time.Now().Format(time.RFC3339), cfg.Seed, cfg.DrivesPerModel, cfg.HorizonDays)
	fmt.Fprintf(&buf, "- drive-days: %d\n- swap events: %d\n- CV folds: %d\n- forest trees: %d\n\n",
		ctx.Fleet.DriveDays(), len(ctx.An.Events), cfg.CVFolds, cfg.ForestTrees)
	fmt.Fprintf(&buf, "Absolute values are not expected to match the proprietary trace; the shape\n")
	fmt.Fprintf(&buf, "(orderings, trends, crossovers) is the reproduction target. Paper reference\n")
	fmt.Fprintf(&buf, "values are embedded in each table.\n\n")

	section := func(name string, tbl *report.Table, plot *report.Plot) {
		fmt.Fprintf(&buf, "## %s\n\n```\n%s```\n\n", name, tbl.String())
		if plot != nil {
			var pb bytes.Buffer
			plot.Render(&pb, 64, 14)
			fmt.Fprintf(&buf, "```\n%s```\n\n", pb.String())
		}
	}
	step := func(name string, run func() (*report.Table, *report.Plot, error)) {
		t0 := time.Now()
		tbl, plot, err := run()
		if err != nil {
			progress("%s FAILED: %v", name, err)
			fmt.Fprintf(&buf, "## %s\n\nFAILED: %v\n\n", name, err)
			return
		}
		section(name, tbl, plot)
		progress("%s done (%v)", name, time.Since(t0).Round(time.Millisecond))
	}
	noPlot := func(f func(*experiments.Context) *report.Table) func() (*report.Table, *report.Plot, error) {
		return func() (*report.Table, *report.Plot, error) { return f(ctx), nil, nil }
	}
	withPlot := func(f func(*experiments.Context) (*report.Table, *report.Plot)) func() (*report.Table, *report.Plot, error) {
		return func() (*report.Table, *report.Plot, error) { t, p := f(ctx); return t, p, nil }
	}

	// Characterization (Sections 2-4).
	step("Table 1 — error-type incidence", noPlot(experiments.Table1))
	step("Table 2 — Spearman correlation matrix", noPlot(experiments.Table2))
	step("Table 3 — failure incidence", noPlot(experiments.Table3))
	step("Table 4 — lifetime failure counts", noPlot(experiments.Table4))
	step("Table 5 — repair re-entry", noPlot(experiments.Table5))
	step("Figure 2 — failure timeline (worked example)", noPlot(experiments.Figure2))
	step("Figure 1 — max age / data count CDFs", withPlot(experiments.Figure1))
	step("Figure 3 — operational period CDF", withPlot(experiments.Figure3))
	step("Figure 4 — non-operational period CDF", withPlot(experiments.Figure4))
	step("Figure 5 — time-to-repair CDF", withPlot(experiments.Figure5))
	step("Figure 6 — failure age CDF and rate", withPlot(experiments.Figure6))
	step("Figure 7 — write intensity by age", withPlot(experiments.Figure7))
	step("Figure 8 — P/E cycles at failure", withPlot(experiments.Figure8))
	step("Figure 9 — P/E at failure, young vs old", withPlot(experiments.Figure9))
	step("Figure 10 — error CDFs at failure", withPlot(experiments.Figure10))
	step("Figure 11 — pre-failure error incidence", func() (*report.Table, *report.Plot, error) {
		top, bottom := experiments.Figure11(ctx)
		section("Figure 11 (top)", top, nil)
		return bottom, nil, nil
	})
	step("Survival refinement (Kaplan-Meier)", func() (*report.Table, *report.Plot, error) {
		return experiments.SurvivalAnalysis(ctx), nil, nil
	})

	// Prediction (Section 5).
	step("Table 6 — classifier comparison", func() (*report.Table, *report.Plot, error) {
		tbl, _, err := experiments.Table6(ctx)
		return tbl, nil, err
	})
	step("Figure 12 — AUC vs lookahead", func() (*report.Table, *report.Plot, error) {
		return experiments.Figure12(ctx)
	})

	progress("pooling cross-validated forest scores for Figures 13-15...")
	ps, err := ctx.PooledCV(nil, 1)
	if err != nil {
		fatal(err)
	}
	step("Figure 13 — per-model ROC", func() (*report.Table, *report.Plot, error) {
		t, p := experiments.Figure13(ctx, ps)
		return t, p, nil
	})
	step("Figure 14 — TPR by age", func() (*report.Table, *report.Plot, error) {
		t, p := experiments.Figure14(ctx, ps)
		return t, p, nil
	})
	step("Figure 15 — young vs old ROC", func() (*report.Table, *report.Plot, error) {
		return experiments.Figure15(ctx, ps)
	})
	step("Figure 16 — feature importances", func() (*report.Table, *report.Plot, error) {
		t, err := experiments.Figure16(ctx)
		return t, nil, err
	})
	step("Table 7 — cross-model transfer", func() (*report.Table, *report.Plot, error) {
		t, err := experiments.Table7(ctx)
		return t, nil, err
	})
	step("Table 8 — error-event prediction", func() (*report.Table, *report.Plot, error) {
		t, err := experiments.Table8(ctx)
		return t, nil, err
	})

	step("Grid search — forest depth", func() (*report.Table, *report.Plot, error) {
		t, err := experiments.HyperparameterGrid(ctx)
		return t, nil, err
	})

	// Methodology ablations (DESIGN.md §6).
	step("Ablation — fold partitioning", func() (*report.Table, *report.Plot, error) {
		t, err := experiments.AblationSplit(ctx)
		return t, nil, err
	})
	step("Ablation — downsampling ratio", func() (*report.Table, *report.Plot, error) {
		t, err := experiments.AblationDownsampling(ctx)
		return t, nil, err
	})
	step("Ablation — feature sets", func() (*report.Table, *report.Plot, error) {
		t, err := experiments.AblationFeatureSets(ctx)
		return t, nil, err
	})
	step("Ablation — forest size", func() (*report.Table, *report.Plot, error) {
		t, err := experiments.AblationForestSize(ctx)
		return t, nil, err
	})

	// Extensions beyond the paper (its §7 future work, plus a seventh
	// classifier).
	step("Extension — trailing-window features for large N", func() (*report.Table, *report.Plot, error) {
		t, err := experiments.ExtensionWindowedFeatures(ctx)
		return t, nil, err
	})
	step("Extension — gradient boosting", func() (*report.Table, *report.Plot, error) {
		t, err := experiments.ExtensionGBDT(ctx)
		return t, nil, err
	})

	fmt.Fprintf(&buf, `## Fidelity summary

Shape results that reproduce (see sections above for numbers):

- random forest is the best of the six models at every lookahead (Table 6)
- AUC declines monotonically with the lookahead window (Figure 12)
- young (<= 90 day) failures are markedly more predictable than mature
  ones, and separate age-band models help (Figure 15, §5.3)
- per-model performance is nearly identical and models transfer across
  drive types with modest degradation (Figure 13, Table 7)
- infant mortality: elevated failure rate in the first ~3 months, with
  no corresponding write-intensity burn-in (Figures 6-7)
- ~98%% of failures occur below half the P/E limit and the post-limit
  failure rate stays low (Figures 8-9)
- failed drives show orders-of-magnitude heavier error tails, yet most
  failures occur with no recent uncorrectable error (Figures 10-11)
- the repair pipeline is slow and lossy: ~20%% swapped within a day,
  ~80%% within a week, roughly half never return (Figures 4-5, Table 5)

Known deviations:

- the young model's top features are dominated by the correctable-error
  swell rather than drive age (Figure 16): the simulator's pre-failure
  signature is more learnable day-of than the real trace's, so the
  forest leans on it; the paper's broader point (non-transparent
  counters for young, wear counters for old) still shows in ranks 3-8
- the AUC tail at N >= 15 sits below the paper's ~0.77 (Figure 12): the
  drive-level hazard heterogeneity that carries long-horizon signal in
  the real fleet is only partially identifiable from our synthetic
  error histories
- absolute error-incidence proportions match to within sampling noise
  (Table 1), but Spearman magnitudes for the rare error pairs are
  noisier than the paper's 40M-drive-day sample (Table 2)

---
total wall time: %v
`, time.Since(start).Round(time.Second))
	if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
		fatal(err)
	}
	progress("wrote %s (total %v)", *out, time.Since(start).Round(time.Second))
}

func progress(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "[ssdreport] "+format+"\n", args...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ssdreport:", err)
	os.Exit(1)
}
