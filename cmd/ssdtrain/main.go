// Command ssdtrain is the continuous-learning trainer: it tails a
// ssdserved daemon's WAL stream, reconstructs the fleet trace,
// watches the ingested feature distribution for drift (two-sample KS),
// retrains the paper's random-forest predictor when a shift is
// detected, and promotes the challenger over the serving champion via
// POST /v1/model/reload only when its AUC on a held-out drive
// partition is non-inferior. Every decision goes to a canonical,
// replayable event log; retrain seeds are derived from the snapshot
// LSN, so a given WAL prefix reproduces a given model byte for byte.
//
// Usage:
//
//	ssdtrain -upstream http://127.0.0.1:8377 -model pred.bin
//
// -model must be the same file the daemon serves from (its -model
// flag): promotions atomically replace it before triggering the
// reload. The trainer pulls the WAL from its beginning — start it
// before the daemon prunes segments (or run the daemon with snapshots
// disabled) so the full record history is available for labeling.
//
// With -donor, a missing model file seeds the champion slot from
// another drive model's predictor (the paper's Table 8 cross-model
// transfer): the donor sets the bar until a locally trained challenger
// beats it on local holdout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ssdfail/internal/learn"
	"ssdfail/internal/serve"
)

func main() {
	if err := run(); err != nil {
		log.Printf("ssdtrain: %v", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		upstream  = flag.String("upstream", "http://127.0.0.1:8377", "daemon base URL (WAL stream + model reload)")
		modelPath = flag.String("model", "", "model file shared with the daemon; promotions replace it (required)")
		donorPath = flag.String("donor", "", "donor predictor to bootstrap the champion from when -model is missing (Table 8 transfer)")
		scope     = flag.String("scope", "all", "drive model to train on (MLC-A, MLC-B, MLC-D) or all")
		lookahead = flag.Int("lookahead", 7, "prediction lookahead in days")
		seed      = flag.Uint64("seed", 42, "base seed; retrain seeds derive from it and the snapshot LSN")
		workers   = flag.Int("workers", 1, "training workers (results are worker-count independent)")
		trees     = flag.Int("trees", 25, "challenger random-forest size")
		holdout   = flag.Float64("holdout", 0.25, "held-out drive fraction for champion/challenger evaluation")
		margin    = flag.Float64("margin", 0.01, "non-inferiority margin on holdout AUC")
		window    = flag.Int("window", 256, "drift window size in records")
		check     = flag.Int("check-every", 64, "drift check cadence in records")
		alpha     = flag.Float64("alpha", 1e-3, "KS p-value threshold for drift")
		minRows   = flag.Int("min-rows", 256, "minimum labeled training rows before a retrain runs")
		cooldown  = flag.Int("cooldown", 0, "records between retrain attempts (0 = 2*window)")
		quiet     = flag.Int("quiet-days", 14, "days of silence behind the frontier before a drive is deemed failed")
		ratio     = flag.Float64("downsample", 5, "training negatives per positive")
		poll      = flag.Duration("poll", 250*time.Millisecond, "idle stream re-poll cadence")
		logPath   = flag.String("log", "", "append canonical decision-log lines to this file (empty = stdout)")
		metrics   = flag.String("metrics-addr", "", "serve /metrics and /v1/train/log on this address (empty = disabled)")
		once      = flag.Bool("once", false, "catch up on the stream, run one final retrain attempt, and exit")
	)
	flag.Parse()
	if *modelPath == "" {
		return errors.New("-model is required (the daemon's model file)")
	}

	sink := os.Stdout
	if *logPath != "" {
		f, err := os.OpenFile(*logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		sink = f
	}

	tr, err := learn.NewTrainer(learn.TrainerConfig{
		Upstream:     strings.TrimRight(*upstream, "/"),
		ModelPath:    *modelPath,
		DonorPath:    *donorPath,
		PollInterval: *poll,
		Loop: learn.Config{
			Scope:           *scope,
			Lookahead:       *lookahead,
			Seed:            *seed,
			Workers:         *workers,
			Trees:           *trees,
			HoldoutFraction: *holdout,
			Margin:          *margin,
			Window:          *window,
			CheckEvery:      *check,
			Alpha:           *alpha,
			MinTrainRows:    *minRows,
			CooldownRecords: *cooldown,
			QuietDays:       int32(*quiet),
			DownsampleRatio: *ratio,
			Sink:            sink,
		},
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *metrics != "" {
		reg := serve.NewMetrics()
		tr.RegisterMetrics(reg)
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", serve.MetricsContentType)
			reg.WriteTo(w) //ssdlint:allow droppederr a failed scrape write only hurts the scraper
		})
		mux.HandleFunc("/v1/train/log", func(w http.ResponseWriter, r *http.Request) {
			// ?n= bounds the count, newest kept (0 or absent = everything
			// retained), matching /v1/remedy/log.
			n := 0
			if q := r.URL.Query().Get("n"); q != "" {
				v, err := strconv.Atoi(q)
				if err != nil || v < 0 {
					http.Error(w, "bad n: must be a non-negative integer", http.StatusBadRequest)
					return
				}
				n = v
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, e := range tr.Loop.Log().Recent(n) {
				fmt.Fprintln(w, e.String())
			}
		})
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: mux}
		go srv.Serve(ln) //ssdlint:allow droppederr server exits with the process; Serve's error is http.ErrServerClosed noise
		defer srv.Close()
		log.Printf("ssdtrain: metrics on http://%s/metrics", ln.Addr())
	}

	log.Printf("ssdtrain: tailing %s, model %s, scope %s", *upstream, *modelPath, *scope)
	if *once {
		if err := tr.CatchUp(ctx); err != nil {
			return fmt.Errorf("catching up: %w", err)
		}
		o := tr.Loop.Retrain()
		log.Printf("ssdtrain: final attempt at lsn %d: promoted=%v champion=%.4f challenger=%.4f reason=%q",
			o.LSN, o.Promoted, o.ChampionAUC, o.ChallengerAUC, o.Reason)
		return nil
	}
	err = tr.Run(ctx)
	if errors.Is(err, context.Canceled) {
		return nil
	}
	return err
}
