// Command ssdcharacterize runs the paper's characterization study
// (Sections 2–4: Tables 1–5 and Figures 1, 3–11) on a fleet trace — a
// file produced by ssdgen, or a freshly simulated fleet.
//
// Usage:
//
//	ssdcharacterize [-trace fleet.bin] [-seed 42] [-drives 300] [-plots]
package main

import (
	"flag"
	"fmt"
	"os"

	"ssdfail/internal/experiments"
	"ssdfail/internal/report"
	"ssdfail/internal/smartio"
	"ssdfail/internal/trace"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "binary trace file (empty = simulate)")
		smartPath = flag.String("smart", "", "SMART daily-snapshot CSV (Backblaze-style) to import instead")
		seed      = flag.Uint64("seed", 42, "simulation seed when no trace is given")
		drives    = flag.Int("drives", 300, "drives per model when simulating")
		horizon   = flag.Int("horizon", 2190, "horizon in days when simulating")
		plots     = flag.Bool("plots", true, "render ASCII plots alongside tables")
		workers   = flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
		skipBad   = flag.Bool("skip-bad-rows", false, "drop unparseable SMART CSV rows instead of failing the import")
	)
	flag.Parse()

	ctx, err := buildContext(*tracePath, *smartPath, *seed, *drives, int32(*horizon), *workers, *skipBad)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssdcharacterize:", err)
		os.Exit(1)
	}

	show := func(tbl *report.Table, plot *report.Plot) {
		fmt.Println(tbl.String())
		if *plots && plot != nil {
			plot.Render(os.Stdout, 64, 14)
			fmt.Println()
		}
	}

	fmt.Printf("fleet: %d drives, %d drive-days, %d swap events\n\n",
		len(ctx.Fleet.Drives), ctx.Fleet.DriveDays(), len(ctx.An.Events))

	show(experiments.Table1(ctx), nil)
	show(experiments.Table2(ctx), nil)
	show(experiments.Table3(ctx), nil)
	show(experiments.Table4(ctx), nil)
	show(experiments.Table5(ctx), nil)
	show(experiments.Figure2(ctx), nil)
	show(experiments.Figure1(ctx))
	show(experiments.Figure3(ctx))
	show(experiments.Figure4(ctx))
	show(experiments.Figure5(ctx))
	show(experiments.Figure6(ctx))
	show(experiments.Figure7(ctx))
	show(experiments.Figure8(ctx))
	show(experiments.Figure9(ctx))
	show(experiments.Figure10(ctx))
	top, bottom := experiments.Figure11(ctx)
	show(top, nil)
	show(bottom, nil)
	show(experiments.SurvivalAnalysis(ctx), nil)
}

// buildContext loads, imports, or simulates the fleet and wraps it in
// an experiment context.
func buildContext(tracePath, smartPath string, seed uint64, drives int, horizon int32, workers int, skipBad bool) (*experiments.Context, error) {
	cfg := experiments.DefaultConfig()
	cfg.Seed = seed
	cfg.DrivesPerModel = drives
	cfg.HorizonDays = horizon
	cfg.Workers = workers
	switch {
	case smartPath != "":
		f, err := os.Open(smartPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		fleet, sum, err := smartio.ReadCSVSummary(f, smartio.Options{SkipBadRows: skipBad})
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "import: %d rows, %d drives", sum.Rows, sum.Drives)
		if sum.Skipped > 0 {
			fmt.Fprintf(os.Stderr, ", %d bad rows skipped (first: %v)", sum.Skipped, sum.First[0])
		}
		fmt.Fprintln(os.Stderr)
		return experiments.NewContextFromFleet(cfg, fleet)
	case tracePath != "":
		f, err := os.Open(tracePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		fleet, err := trace.ReadBinary(f)
		if err != nil {
			return nil, err
		}
		return experiments.NewContextFromFleet(cfg, fleet)
	}
	return experiments.NewContext(cfg)
}
