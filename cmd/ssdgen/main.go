// Command ssdgen generates a synthetic SSD fleet trace calibrated to the
// statistics of "SSD Failures in the Field" (SC '19) and writes it to a
// file in the binary (.bin) or CSV (.csv) trace format.
//
// Usage:
//
//	ssdgen -out fleet.bin [-seed 42] [-drives 300] [-horizon 2190] [-workers 0]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"ssdfail/internal/failure"
	"ssdfail/internal/fleetsim"
	"ssdfail/internal/trace"
)

func main() {
	var (
		out     = flag.String("out", "fleet.bin", "output path (.bin or .csv)")
		seed    = flag.Uint64("seed", 42, "generation seed")
		drives  = flag.Int("drives", 300, "drives per MLC model (three models total)")
		horizon = flag.Int("horizon", 2190, "trace length in days")
		workers = flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
	)
	flag.Parse()

	cfg := fleetsim.DefaultConfig(*seed, *drives)
	cfg.HorizonDays = int32(*horizon)
	if cfg.EarlyWindow >= cfg.HorizonDays-60 {
		cfg.EarlyWindow = (cfg.HorizonDays - 60) / 3
	}
	cfg.Workers = *workers

	start := time.Now()
	fleet, _, err := fleetsim.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	genTime := time.Since(start)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	switch filepath.Ext(*out) {
	case ".csv":
		err = trace.WriteCSV(f, fleet)
	default:
		err = trace.WriteBinary(f, fleet)
	}
	if err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		fatal(err)
	}

	an := failure.Analyze(fleet)
	fmt.Printf("generated %d drives, %d drive-days in %v\n",
		len(fleet.Drives), fleet.DriveDays(), genTime.Round(time.Millisecond))
	fmt.Printf("swap events: %d (%.2f%% of drives failed at least once)\n",
		len(an.Events), 100*float64(an.FailedDriveCount())/float64(len(fleet.Drives)))
	fi, err := os.Stat(*out)
	if err == nil {
		fmt.Printf("wrote %s (%.1f MB)\n", *out, float64(fi.Size())/(1<<20))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ssdgen:", err)
	os.Exit(1)
}
