// Command ssdpredict runs the paper's failure-prediction study
// (Section 5: Tables 6–8 and Figures 12–16) on a simulated or loaded
// fleet trace.
//
// Usage:
//
//	ssdpredict [-trace fleet.bin] [-drives 300] [-what table6,fig12,...]
//
// The -what flag selects experiments (comma-separated); "all" (the
// default) runs everything. Table 6 is the most expensive (six models x
// four lookaheads x k folds).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ssdfail/internal/experiments"
	"ssdfail/internal/expgrid"
	"ssdfail/internal/report"
	"ssdfail/internal/trace"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "binary trace file (empty = simulate)")
		seed      = flag.Uint64("seed", 42, "simulation seed when no trace is given")
		drives    = flag.Int("drives", 300, "drives per model when simulating")
		horizon   = flag.Int("horizon", 2190, "horizon in days when simulating")
		folds     = flag.Int("folds", 5, "cross-validation folds")
		treesN    = flag.Int("trees", 100, "random forest size")
		what      = flag.String("what", "all", "comma-separated: table6,table7,table8,fig12,fig13,fig14,fig15,fig16,grid,ablations,extension")
		plots     = flag.Bool("plots", true, "render ASCII plots alongside tables")
		workers   = flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
		benchOut  = flag.String("train-bench", "", "run the Table 6 grid at 1/2/4 workers and write a BENCH_train.json report to this path, then exit")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Seed = *seed
	cfg.DrivesPerModel = *drives
	cfg.HorizonDays = int32(*horizon)
	cfg.CVFolds = *folds
	cfg.ForestTrees = *treesN
	cfg.Workers = *workers

	ctx, err := buildContext(cfg, *tracePath)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("fleet: %d drives, %d drive-days, %d swap events\n\n",
		len(ctx.Fleet.Drives), ctx.Fleet.DriveDays(), len(ctx.An.Events))

	if *benchOut != "" {
		if err := runTrainBench(ctx, *benchOut); err != nil {
			fatal(err)
		}
		return
	}

	want := map[string]bool{}
	for _, w := range strings.Split(*what, ",") {
		want[strings.TrimSpace(w)] = true
	}
	all := want["all"]
	show := func(tbl *report.Table, plot *report.Plot) {
		fmt.Println(tbl.String())
		if *plots && plot != nil {
			plot.Render(os.Stdout, 64, 14)
			fmt.Println()
		}
	}
	timed := func(name string, run func() error) {
		start := time.Now()
		if err := run(); err != nil {
			fmt.Fprintf(os.Stderr, "ssdpredict: %s: %v\n", name, err)
			return
		}
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if all || want["table6"] {
		timed("table6", func() error {
			tbl, _, err := experiments.Table6(ctx)
			if err != nil {
				return err
			}
			show(tbl, nil)
			return nil
		})
	}
	if all || want["fig12"] {
		timed("fig12", func() error {
			tbl, plot, err := experiments.Figure12(ctx)
			if err != nil {
				return err
			}
			show(tbl, plot)
			return nil
		})
	}

	// Figures 13–15 share one pooled cross-validation run.
	if all || want["fig13"] || want["fig14"] || want["fig15"] {
		timed("fig13-15", func() error {
			ps, err := ctx.PooledCV(nil, 1)
			if err != nil {
				return err
			}
			if all || want["fig13"] {
				show(experiments.Figure13(ctx, ps))
			}
			if all || want["fig14"] {
				show(experiments.Figure14(ctx, ps))
			}
			if all || want["fig15"] {
				tbl, plot, err := experiments.Figure15(ctx, ps)
				if err != nil {
					return err
				}
				show(tbl, plot)
			}
			return nil
		})
	}
	if all || want["fig16"] {
		timed("fig16", func() error {
			tbl, err := experiments.Figure16(ctx)
			if err != nil {
				return err
			}
			show(tbl, nil)
			return nil
		})
	}
	if all || want["table7"] {
		timed("table7", func() error {
			tbl, err := experiments.Table7(ctx)
			if err != nil {
				return err
			}
			show(tbl, nil)
			return nil
		})
	}
	if all || want["table8"] {
		timed("table8", func() error {
			tbl, err := experiments.Table8(ctx)
			if err != nil {
				return err
			}
			show(tbl, nil)
			return nil
		})
	}
	if all || want["ablations"] {
		timed("ablations", func() error {
			for _, run := range []func(*experiments.Context) (*report.Table, error){
				experiments.AblationSplit,
				experiments.AblationDownsampling,
				experiments.AblationFeatureSets,
				experiments.AblationForestSize,
			} {
				tbl, err := run(ctx)
				if err != nil {
					return err
				}
				show(tbl, nil)
			}
			return nil
		})
	}
	if all || want["grid"] {
		timed("grid", func() error {
			tbl, err := experiments.HyperparameterGrid(ctx)
			if err != nil {
				return err
			}
			show(tbl, nil)
			return nil
		})
	}
	if all || want["extension"] {
		timed("extension", func() error {
			tbl, err := experiments.ExtensionWindowedFeatures(ctx)
			if err != nil {
				return err
			}
			show(tbl, nil)
			tbl, err = experiments.ExtensionGBDT(ctx)
			if err != nil {
				return err
			}
			show(tbl, nil)
			return nil
		})
	}
}

// runTrainBench runs the Table 6 grid through the experiment engine at
// several worker counts, verifies every run produces a byte-identical
// AUC table, and writes the BENCH_train.json report.
func runTrainBench(ctx *experiments.Context, path string) error {
	spec := ctx.GridSpec(experiments.PaperTable6Lookaheads[:]...)
	var (
		runs     []expgrid.BenchRun
		baseline []byte
		same     = true
	)
	for _, w := range []int{1, 2, 4} {
		s := spec
		s.Workers = w
		res, err := expgrid.Run(s)
		if err == nil {
			err = res.Err()
		}
		if err != nil {
			return fmt.Errorf("train-bench (workers=%d): %w", w, err)
		}
		tbl := res.AUCTable()
		if baseline == nil {
			baseline = tbl
		} else if !bytes.Equal(baseline, tbl) {
			same = false
		}
		runs = append(runs, expgrid.BenchRun{Stats: res.Stats})
		fmt.Printf("train-bench: workers=%d wall=%.2fs tasks/s=%.1f cache hit rate=%.0f%%\n",
			w, res.Stats.WallSeconds, res.Stats.TasksPerSec, 100*res.Stats.CacheHitRate)
	}
	rep := experiments.TrainBenchReport(ctx, &spec, runs, same)
	if err := rep.WriteFile(path); err != nil {
		return err
	}
	fmt.Printf("train-bench: aucs_identical=%v report written to %s\n", same, path)
	return nil
}

func buildContext(cfg experiments.Config, tracePath string) (*experiments.Context, error) {
	if tracePath == "" {
		return experiments.NewContext(cfg)
	}
	f, err := os.Open(tracePath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fleet, err := trace.ReadBinary(f)
	if err != nil {
		return nil, err
	}
	return experiments.NewContextFromFleet(cfg, fleet)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ssdpredict:", err)
	os.Exit(1)
}
