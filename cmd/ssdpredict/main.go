// Command ssdpredict runs the paper's failure-prediction study
// (Section 5: Tables 6–8 and Figures 12–16) on a simulated or loaded
// fleet trace.
//
// Usage:
//
//	ssdpredict [-trace fleet.bin] [-drives 300] [-what table6,fig12,...]
//
// The -what flag selects experiments (comma-separated); "all" (the
// default) runs everything. Table 6 is the most expensive (six models x
// four lookaheads x k folds).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ssdfail/internal/experiments"
	"ssdfail/internal/report"
	"ssdfail/internal/trace"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "binary trace file (empty = simulate)")
		seed      = flag.Uint64("seed", 42, "simulation seed when no trace is given")
		drives    = flag.Int("drives", 300, "drives per model when simulating")
		horizon   = flag.Int("horizon", 2190, "horizon in days when simulating")
		folds     = flag.Int("folds", 5, "cross-validation folds")
		treesN    = flag.Int("trees", 100, "random forest size")
		what      = flag.String("what", "all", "comma-separated: table6,table7,table8,fig12,fig13,fig14,fig15,fig16,grid,ablations,extension")
		plots     = flag.Bool("plots", true, "render ASCII plots alongside tables")
		workers   = flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Seed = *seed
	cfg.DrivesPerModel = *drives
	cfg.HorizonDays = int32(*horizon)
	cfg.CVFolds = *folds
	cfg.ForestTrees = *treesN
	cfg.Workers = *workers

	ctx, err := buildContext(cfg, *tracePath)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("fleet: %d drives, %d drive-days, %d swap events\n\n",
		len(ctx.Fleet.Drives), ctx.Fleet.DriveDays(), len(ctx.An.Events))

	want := map[string]bool{}
	for _, w := range strings.Split(*what, ",") {
		want[strings.TrimSpace(w)] = true
	}
	all := want["all"]
	show := func(tbl *report.Table, plot *report.Plot) {
		fmt.Println(tbl.String())
		if *plots && plot != nil {
			plot.Render(os.Stdout, 64, 14)
			fmt.Println()
		}
	}
	timed := func(name string, run func() error) {
		start := time.Now()
		if err := run(); err != nil {
			fmt.Fprintf(os.Stderr, "ssdpredict: %s: %v\n", name, err)
			return
		}
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if all || want["table6"] {
		timed("table6", func() error {
			tbl, _, err := experiments.Table6(ctx)
			if err != nil {
				return err
			}
			show(tbl, nil)
			return nil
		})
	}
	if all || want["fig12"] {
		timed("fig12", func() error {
			tbl, plot, err := experiments.Figure12(ctx)
			if err != nil {
				return err
			}
			show(tbl, plot)
			return nil
		})
	}

	// Figures 13–15 share one pooled cross-validation run.
	if all || want["fig13"] || want["fig14"] || want["fig15"] {
		timed("fig13-15", func() error {
			ps, err := ctx.PooledCV(nil, 1)
			if err != nil {
				return err
			}
			if all || want["fig13"] {
				show(experiments.Figure13(ctx, ps))
			}
			if all || want["fig14"] {
				show(experiments.Figure14(ctx, ps))
			}
			if all || want["fig15"] {
				tbl, plot, err := experiments.Figure15(ctx, ps)
				if err != nil {
					return err
				}
				show(tbl, plot)
			}
			return nil
		})
	}
	if all || want["fig16"] {
		timed("fig16", func() error {
			tbl, err := experiments.Figure16(ctx)
			if err != nil {
				return err
			}
			show(tbl, nil)
			return nil
		})
	}
	if all || want["table7"] {
		timed("table7", func() error {
			tbl, err := experiments.Table7(ctx)
			if err != nil {
				return err
			}
			show(tbl, nil)
			return nil
		})
	}
	if all || want["table8"] {
		timed("table8", func() error {
			tbl, err := experiments.Table8(ctx)
			if err != nil {
				return err
			}
			show(tbl, nil)
			return nil
		})
	}
	if all || want["ablations"] {
		timed("ablations", func() error {
			for _, run := range []func(*experiments.Context) (*report.Table, error){
				experiments.AblationSplit,
				experiments.AblationDownsampling,
				experiments.AblationFeatureSets,
				experiments.AblationForestSize,
			} {
				tbl, err := run(ctx)
				if err != nil {
					return err
				}
				show(tbl, nil)
			}
			return nil
		})
	}
	if all || want["grid"] {
		timed("grid", func() error {
			tbl, err := experiments.HyperparameterGrid(ctx)
			if err != nil {
				return err
			}
			show(tbl, nil)
			return nil
		})
	}
	if all || want["extension"] {
		timed("extension", func() error {
			tbl, err := experiments.ExtensionWindowedFeatures(ctx)
			if err != nil {
				return err
			}
			show(tbl, nil)
			tbl, err = experiments.ExtensionGBDT(ctx)
			if err != nil {
				return err
			}
			show(tbl, nil)
			return nil
		})
	}
}

func buildContext(cfg experiments.Config, tracePath string) (*experiments.Context, error) {
	if tracePath == "" {
		return experiments.NewContext(cfg)
	}
	f, err := os.Open(tracePath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fleet, err := trace.ReadBinary(f)
	if err != nil {
		return nil, err
	}
	return experiments.NewContextFromFleet(cfg, fleet)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ssdpredict:", err)
	os.Exit(1)
}
