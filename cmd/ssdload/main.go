// Command ssdload drives deterministic load against a running ssdserved
// and verifies end-to-end conformance. It replays the tail of a seeded
// fleetsim fleet over HTTP — closed-loop (fixed concurrency) or
// open-loop (fixed arrival rate) — measures per-endpoint latency
// distributions, and writes a machine-readable report (BENCH_serve.json
// by default).
//
// Two invocations with the same flags produce byte-identical request
// schedules (the report carries the schedule's SHA-256 as proof), so
// benchmark numbers are comparable across runs, machines, and commits.
//
// With -conformance (the default) the harness additionally checks, after
// the load completes, that the daemon's state exactly explains the
// driven load: every replayed drive is present, current, and scoreable;
// /metrics counters advanced by exactly the client's own books
// (accepted + shed + rejected, per handler and status code); and a
// mid-run hot model swap was only ever observed monotonically. Any
// violation exits nonzero.
//
// Usage:
//
//	ssdload -addr http://127.0.0.1:8377 -seed 1 -mode closed -streams 4
//
// Exit codes: 0 success, 1 run or flag error, 2 conformance violation
// or degenerate measurements.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"ssdfail/internal/loadgen"
	"ssdfail/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr  = flag.String("addr", "http://127.0.0.1:8377", "base URL of the ssdserved daemon")
		seed  = flag.Uint64("seed", 1, "seed for the fleet, probe placement, and arrival times")
		mode  = flag.String("mode", "closed", "pacing mode: closed (fixed concurrency) or open (fixed arrival rate)")
		strms = flag.Int("streams", 4, "concurrent request streams")
		rate  = flag.Float64("rate", 200, "open-loop offered load per stream, requests/sec")

		drives  = flag.Int("drives", 24, "fleet drives per model (3 models)")
		horizon = flag.Int("horizon", 365, "fleet trace horizon, days (>= 90)")
		days    = flag.Int("days", 30, "replay window: ingest the last N days of the trace")
		batch   = flag.Int("batch", 16, "records per ingest batch")
		probe   = flag.Int("probe-every", 8, "interleave one read probe every N batches")
		reload  = flag.Bool("reload-mid-run", true, "hot-swap the model at the midpoint of stream 0")
		wire    = flag.String("wire", "json", "ingest wire format: json (POST /v1/ingest/batch) or binary (POST /v1/ingest/bin)")
		remedy  = flag.Int("remedy-every", 0,
			"interleave one remediation evaluation (POST /v1/remedy/evaluate) every N batches on stream 0 (0 = none)")
		driftMult = flag.Float64("drift-mult", 0,
			"inject a mid-run distribution shift: a second fleet cohort at this write-scale multiple (0 = off)")
		driftAfter = flag.Float64("drift-after", 0.5,
			"fraction of the replay window after which the drift cohort comes online")
		driftDrives = flag.Int("drift-drives", 0,
			"drift cohort drives per model (0 = same as -drives)")
		hazardMult = flag.Float64("hazard-mult", 0,
			"scale fleet failure hazards so short replay windows carry labeled failures (0 = calibrated rates)")

		offset = flag.Uint("drive-offset", 0,
			"shift replayed drive IDs; use a fresh offset per run against a long-lived daemon")

		duration = flag.Duration("duration", 0, "abort the run after this long (0 = no limit)")
		out      = flag.String("out", "BENCH_serve.json", "report output path (empty = don't write)")
		conform  = flag.Bool("conformance", true, "verify daemon state and metrics accounting after the run")
		history  = flag.Int("history", serve.DefaultHistory,
			"daemon's per-drive history depth for exact retention checks (0 = skip)")
		buildOnly = flag.Bool("build-only", false, "build the schedule, print its hash, and exit (no daemon needed)")
	)
	flag.Parse()

	cfg := loadgen.Config{
		Seed:           *seed,
		Mode:           loadgen.Mode(*mode),
		Streams:        *strms,
		DrivesPerModel: *drives,
		HorizonDays:    int32(*horizon),
		Days:           int32(*days),
		BatchSize:      *batch,
		ProbeEvery:     *probe,
		RatePerStream:  *rate,
		ReloadMidRun:   *reload,
		RemedyEvery:    *remedy,
		DriveIDOffset:  uint32(*offset),
		Wire:           *wire,

		DriftWriteMult:      *driftMult,
		DriftAfterFrac:      *driftAfter,
		DriftDrivesPerModel: *driftDrives,
		HazardMult:          *hazardMult,
	}
	sched, err := loadgen.Build(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ssdload: %v\n", err)
		return 1
	}
	fmt.Printf("schedule: %d requests, %d records, %d drives, %d streams, sha256 %s\n",
		sched.TotalRequests, sched.TotalRecords, len(sched.Drives), len(sched.Streams), sched.Hash)
	if *buildOnly {
		return 0
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	runner := &loadgen.Runner{BaseURL: *addr}
	res, err := runner.Run(ctx, sched)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ssdload: run: %v\n", err)
		return 1
	}
	fmt.Printf("run: %d requests in %v (%.0f req/s, %.0f rec/s accepted)\n",
		res.Requests, res.Wall.Round(time.Millisecond),
		float64(res.Requests)/res.Wall.Seconds(),
		float64(res.AcceptedRecords)/res.Wall.Seconds())

	var violations []string
	if *conform {
		violations, err = runner.Verify(ctx, res, loadgen.VerifyOptions{History: *history})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssdload: conformance: %v\n", err)
			return 1
		}
	}

	rep := loadgen.NewReport(res, violations, *conform)
	printEndpoints(rep)
	if *out != "" {
		data, err := rep.MarshalIndent()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssdload: encoding report: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "ssdload: writing report: %v\n", err)
			return 1
		}
		fmt.Printf("report: %s\n", *out)
	}

	exit := 0
	if *conform {
		if len(violations) == 0 {
			fmt.Printf("conformance: PASS (%d drives verified, %d reloads, %d watchlists)\n",
				rep.Conformance.DrivesVerified, rep.Reloads, rep.Watchlists)
		} else {
			fmt.Printf("conformance: FAIL (%d violations)\n", len(violations))
			for _, viol := range violations {
				fmt.Printf("  - %s\n", viol)
			}
			exit = 2
		}
		// A benchmark whose latency quantiles collapsed to zero is not a
		// measurement; refuse to bless it.
		ingestName := "ingest_batch"
		if sched.Cfg.Wire == loadgen.WireBinary {
			ingestName = "ingest_bin"
		}
		q := rep.Endpoints[ingestName]
		if q.Count == 0 || q.P50 <= 0 || q.P99 <= 0 || q.P999 <= 0 {
			fmt.Printf("conformance: FAIL: degenerate ingest latency quantiles (%s)\n", q)
			exit = 2
		}
	}
	return exit
}

// printEndpoints renders per-endpoint latency summaries, stably ordered.
func printEndpoints(rep *loadgen.Report) {
	names := make([]string, 0, len(rep.Endpoints))
	for name := range rep.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-13s %s\n", name, rep.Endpoints[name])
	}
}
