// Command ssdlint runs the repo's static analyzers — the determinism
// and durability contract checks — over the module, using only the
// standard library's go/parser, go/ast, and go/types.
//
// Usage:
//
//	go run ./cmd/ssdlint ./...
//	go run ./cmd/ssdlint -json ./internal/serve
//	go run ./cmd/ssdlint -baseline .ssdlint-baseline ./...
//	go run ./cmd/ssdlint -baseline .ssdlint-baseline -write-baseline ./...
//	go run ./cmd/ssdlint -baseline .ssdlint-baseline -strict-baseline -report LINT_REPORT.json ./...
//
// Exit status: 0 when no findings outside the baseline, 1 when new
// findings exist, 2 on usage or load errors. Individual findings are
// suppressed inline with
//
//	//ssdlint:allow <analyzer> <reason>
//
// on or directly above the offending line.
package main

import (
	"flag"
	"fmt"
	"os"

	"ssdfail/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text")
	baseline := flag.String("baseline", "", "baseline `file` of accepted findings (missing file = empty)")
	writeBaseline := flag.Bool("write-baseline", false, "rewrite the -baseline file with the current findings and exit 0")
	strictBaseline := flag.Bool("strict-baseline", false, "fail (exit 1) when the -baseline file has stale entries matching no current finding")
	report := flag.String("report", "", "write a JSON run summary with per-analyzer finding counts to `file`")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ssdlint [flags] packages...\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ssdlint: %v\n", err)
		os.Exit(lint.ExitError)
	}
	os.Exit(lint.Run(lint.Options{
		Dir:            cwd,
		Patterns:       flag.Args(),
		JSON:           *jsonOut,
		BaselinePath:   *baseline,
		WriteBaseline:  *writeBaseline,
		StrictBaseline: *strictBaseline,
		ReportPath:     *report,
	}))
}
