// Command ssdremedy drives the remediation control plane from the
// command line, in two modes.
//
// Scenario mode (the default) executes a declarative scenario file —
// fleet definition, policy, timed score/fault/restock events, and
// assertions — through the deterministic policy engine and writes the
// remediation event log. Replaying the same scenario always produces a
// byte-identical log, at any GOMAXPROCS; CI diffs committed scenarios
// against golden logs on every push.
//
//	ssdremedy -scenario scenarios/rate_limit_pressure.json -out events.log
//	ssdremedy -scenario scenarios/pool_exhaustion.json -check
//
// Exit codes: 0 on success, 1 on usage or execution errors, 2 when the
// scenario ran but assertions were violated.
//
// Live mode polls a running ssdserved daemon's watchlist (the full
// scored fleet, threshold=0) on an interval and feeds a local policy
// engine, printing each tick's decisions. The daemon itself stays
// untouched — cordon/drain/swap state lives in this process.
//
//	ssdremedy -live -addr http://127.0.0.1:8377 -interval 10s -ticks 6
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"ssdfail/internal/remedy"
	"ssdfail/internal/sparepool"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		scenarioPath = flag.String("scenario", "", "scenario file to execute")
		outPath      = flag.String("out", "", "write the remediation event log here (default stdout)")
		check        = flag.Bool("check", false, "parse and validate the scenario, run nothing")
		quiet        = flag.Bool("quiet", false, "suppress the closing summary")

		live     = flag.Bool("live", false, "poll a running ssdserved daemon instead of a scenario")
		addr     = flag.String("addr", "http://127.0.0.1:8377", "daemon base URL for -live")
		interval = flag.Duration("interval", 10*time.Second, "evaluation cadence for -live")
		ticks    = flag.Int("ticks", 0, "stop -live after this many evaluations (0 = run until interrupted)")

		threshold = flag.Float64("threshold", 0.9, "live-mode score threshold")
		cordon    = flag.Int("cordon-after", 3, "live-mode consecutive breaches before cordoning")
		uncordon  = flag.Int("uncordon-after", 0, "live-mode consecutive clears before uncordoning (0 = cordon-after)")
		frac      = flag.Float64("max-drain-fraction", 0.1, "live-mode max fraction of one model draining at once")
		drain     = flag.Int("drain-ticks", 2, "live-mode ticks a drain takes")
		swapCost  = flag.Float64("swap-cost", 1, "live-mode accounting cost of a swap")
		lossCost  = flag.Float64("loss-cost", 20, "live-mode accounting cost of an unswapped failure")
		spares    = flag.Int("spares", 10, "live-mode spare pool stock")
	)
	flag.Parse()

	if *live {
		policy := remedy.Policy{
			Threshold:        *threshold,
			CordonAfter:      *cordon,
			UncordonAfter:    *uncordon,
			MaxDrainFraction: *frac,
			DrainTicks:       *drain,
			SwapCost:         *swapCost,
			LossCost:         *lossCost,
		}
		if err := runLive(*addr, policy, *spares, *interval, *ticks); err != nil {
			log.Printf("ssdremedy: %v", err)
			return 1
		}
		return 0
	}

	if *scenarioPath == "" {
		log.Printf("ssdremedy: -scenario is required (or -live)")
		flag.Usage()
		return 1
	}
	sc, err := remedy.LoadScenario(*scenarioPath)
	if err != nil {
		log.Printf("ssdremedy: %v", err)
		return 1
	}
	if *check {
		fmt.Printf("%s: valid (%d fleet groups, %d ticks, %d events, %d assertions)\n",
			*scenarioPath, len(sc.Fleet), sc.Ticks, len(sc.Events), len(sc.Assertions))
		return 0
	}
	res, err := remedy.Run(sc)
	if err != nil {
		log.Printf("ssdremedy: %v", err)
		return 1
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, res.EventLog, 0o644); err != nil {
			log.Printf("ssdremedy: %v", err)
			return 1
		}
	} else {
		os.Stdout.Write(res.EventLog)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "scenario %s: %d events\n%s",
			sc.Name, res.Summary.Stats.Swaps+res.Summary.Stats.Cordons+
				res.Summary.Stats.Uncordons+res.Summary.Stats.DrainStarts+
				res.Summary.Stats.Failures,
			remedy.FormatSummary(res.Summary, res.Pool))
	}
	if len(res.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "scenario %s: %d assertion violations:\n", sc.Name, len(res.Violations))
		for _, v := range res.Violations {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
		return 2
	}
	return 0
}

// runLive polls the daemon's full scored fleet and feeds a local
// engine, printing each tick's decisions as they happen.
func runLive(addr string, policy remedy.Policy, spares int, interval time.Duration, maxTicks int) error {
	pool, err := sparepool.NewPool(spares)
	if err != nil {
		return err
	}
	engine, err := remedy.NewEngine(policy, pool, remedy.NewEventLog(os.Stdout, 0))
	if err != nil {
		return err
	}
	src := &remedy.HTTPSource{BaseURL: addr}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for tick := 1; ; tick++ {
		ctx, cancel := context.WithTimeout(context.Background(), interval)
		scores, err := src.Fetch(ctx)
		cancel()
		if err != nil {
			// A daemon mid-restart is not fatal; skip the tick.
			log.Printf("ssdremedy: tick %d: %v", tick, err)
		} else if _, err := engine.Evaluate(scores, nil); err != nil {
			return err
		}
		if maxTicks > 0 && tick >= maxTicks {
			break
		}
		<-ticker.C
	}
	fmt.Fprint(os.Stderr, remedy.FormatSummary(engine.Summary(), pool.Stats()))
	return nil
}
