// Command ssdserved is the online fleet-scoring daemon: it ingests
// per-drive daily telemetry over HTTP, maintains a sharded in-memory
// fleet state, scores drives with a serialized random-forest predictor
// (hot-swappable at runtime), and serves the ranked watchlist the paper
// proposes for proactive fleet management (§5, Figures 14–15).
//
// Usage:
//
//	ssdserved -model pred.bin [-addr :8377] [-bootstrap] [-wal-dir DIR]
//
// With -bootstrap, a missing model file is trained on a simulated fleet
// and saved to -model first, so the daemon can be tried end to end
// without any prior artifacts:
//
//	ssdserved -model /tmp/pred.bin -bootstrap -wal-dir /tmp/ssdserved-wal
//	curl -s localhost:8377/healthz
//	curl -s -X POST localhost:8377/v1/ingest/batch -d @day.json
//	curl -s 'localhost:8377/v1/watchlist?k=10&threshold=0.5'
//	curl -s -X POST localhost:8377/v1/model/reload
//	curl -s -X POST localhost:8377/v1/snapshot
//	curl -s localhost:8377/metrics
//
// With -wal-dir set, accepted records are written to a write-ahead log
// and periodic snapshots; on restart the daemon replays them, so fleet
// state survives crashes. The daemon shuts down gracefully on
// SIGINT/SIGTERM, draining in-flight requests and flushing the WAL
// before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ssdfail/internal/cluster"
	"ssdfail/internal/core"
	"ssdfail/internal/ml/forest"
	"ssdfail/internal/remedy"
	"ssdfail/internal/serve"
)

// main is only an exit-code adapter: all work happens in run, so its
// deferred cleanup (WAL flush, listener close) runs even on failure
// paths — log.Fatalf would skip it.
func main() {
	if err := run(); err != nil {
		log.Printf("ssdserved: %v", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", ":8377", "listen address")
		modelPath = flag.String("model", "ssdserved-model.bin", "predictor file (core.Predictor.Save format)")
		bootstrap = flag.Bool("bootstrap", false, "train and save a model to -model if the file is missing")
		seed      = flag.Uint64("seed", 42, "simulation seed for -bootstrap")
		drives    = flag.Int("drives", 150, "drives per model simulated for -bootstrap")
		lookahead = flag.Int("lookahead", 3, "prediction lookahead in days for -bootstrap")
		trees     = flag.Int("trees", 50, "random-forest size for -bootstrap")
		shards    = flag.Int("shards", serve.DefaultShards, "drive-store shard count")
		history   = flag.Int("history", serve.DefaultHistory, "daily reports retained per drive")
		workers   = flag.Int("workers", 0, "batch-scoring workers (0 = all CPUs)")
		threshold = flag.Float64("threshold", 0.9, "default watchlist score threshold (paper's low-FPR operating point)")
		k         = flag.Int("k", 50, "default watchlist length")
		maxBody   = flag.Int64("max-body", 8<<20, "maximum ingest request body in bytes")
		drainFor  = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain timeout")

		walDir        = flag.String("wal-dir", "", "write-ahead-log directory; empty disables durability")
		walSegBytes   = flag.Int64("wal-segment-bytes", 0, "WAL segment rotation size (0 = 8 MiB)")
		walSyncEvery  = flag.Int("wal-sync-every", 0, "fsync the WAL every N accepted records (0 = 64, -1 = only on rotation/close)")
		walSyncIntvl  = flag.Duration("wal-sync-interval", 0, "max time an accepted record may sit un-fsynced under group commit (0 = 100ms, negative disables the timer)")
		snapshotEvery = flag.Int("snapshot-every", 0, "write a store snapshot every N accepted records (0 = 4096, -1 disables)")

		remedyOn       = flag.Bool("remedy", false, "enable the remediation control plane (/v1/remedy/*)")
		remedyThresh   = flag.Float64("remedy-threshold", 0.9, "remediation score threshold")
		remedyCordon   = flag.Int("remedy-cordon-after", 3, "consecutive breaches before cordoning")
		remedyUncordon = flag.Int("remedy-uncordon-after", 0, "consecutive clears before uncordoning (0 = same as cordon-after)")
		remedyFrac     = flag.Float64("remedy-max-drain-fraction", 0.1, "max fraction of one drive model draining at once")
		remedyDrain    = flag.Int("remedy-drain-ticks", 2, "evaluation ticks a drain takes before the swap")
		remedySwapCost = flag.Float64("remedy-swap-cost", 1, "accounting cost of one swap")
		remedyLossCost = flag.Float64("remedy-loss-cost", 20, "accounting cost of one unswapped failure")
		remedySpares   = flag.Int("remedy-spares", 0, "spares stocked in the pool at startup")

		nodeName   = flag.String("node-name", "", "cluster node name reported by /v1/health (empty for standalone)")
		follow     = flag.String("follow", "", "primary base URL to replicate from (makes this node a WAL-streaming follower)")
		followPoll = flag.Duration("follow-poll", 0, "follower catch-up poll interval (0 = 50ms)")

		maxIngest   = flag.Int("max-inflight-ingest", 0, "concurrent ingest requests before shedding with 429 (0 = 256)")
		maxScores   = flag.Int("max-inflight-scores", 0, "concurrent watchlist scoring passes before shedding with 429 (0 = 4)")
		reqTimeout  = flag.Duration("request-timeout", 0, "per-request deadline (0 = 30s, negative disables)")
		modelTries  = flag.Int("model-retries", 5, "startup model-load attempts (exponential backoff between them)")
		readTimeout = flag.Duration("read-timeout", 30*time.Second, "HTTP server read timeout (full request)")
		idleTimeout = flag.Duration("idle-timeout", 2*time.Minute, "HTTP server keep-alive idle timeout")
	)
	flag.Parse()

	if *bootstrap {
		if err := bootstrapModel(*modelPath, *seed, *drives, *lookahead, *trees, *workers); err != nil {
			return fmt.Errorf("bootstrap: %v", err)
		}
	}

	var remedyPolicy *remedy.Policy
	if *remedyOn {
		remedyPolicy = &remedy.Policy{
			Threshold:        *remedyThresh,
			CordonAfter:      *remedyCordon,
			UncordonAfter:    *remedyUncordon,
			MaxDrainFraction: *remedyFrac,
			DrainTicks:       *remedyDrain,
			SwapCost:         *remedySwapCost,
			LossCost:         *remedyLossCost,
		}
	}

	// Bind and answer immediately: until WAL replay finishes the gate
	// reports "starting" with 503, so cluster probes and load balancers
	// can tell "recovering" from "dead" instead of timing out.
	gate := cluster.NewGate()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           gate,
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: 10 * time.Second,
		// Watchlist responses for large fleets take a while to build;
		// give writes the read budget plus slack.
		WriteTimeout: *readTimeout + 30*time.Second,
		IdleTimeout:  *idleTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	log.Printf("ssdserved: listening on %s (readiness gate up while state recovers)", ln.Addr())

	srv, err := serve.New(serve.Config{
		ModelPath:          *modelPath,
		Shards:             *shards,
		History:            *history,
		Workers:            *workers,
		MaxBodyBytes:       *maxBody,
		WatchlistThreshold: *threshold,
		WatchlistK:         *k,
		WALDir:             *walDir,
		WALSegmentBytes:    *walSegBytes,
		WALSyncEvery:       *walSyncEvery,
		WALSyncInterval:    *walSyncIntvl,
		SnapshotEvery:      *snapshotEvery,
		MaxInflightIngest:  *maxIngest,
		MaxInflightScores:  *maxScores,
		RequestTimeout:     *reqTimeout,
		ModelLoadAttempts:  *modelTries,
		RemedyPolicy:       remedyPolicy,
		RemedySpares:       *remedySpares,
		NodeName:           *nodeName,
	})
	if err != nil {
		httpSrv.Close()
		return err
	}
	// Flush and close the WAL on every exit path, after the HTTP server
	// has stopped accepting work.
	defer func() {
		if cerr := srv.Close(); cerr != nil {
			log.Printf("ssdserved: closing durability layer: %v", cerr)
		}
	}()
	if rec, ok := srv.Recovery(); ok {
		log.Printf("ssdserved: recovered durable state from %s: snapshot lsn %d (%d drives), %d WAL records replayed, %d covered, %d duplicates, %d truncations (%d bytes), %d segments dropped",
			*walDir, rec.SnapshotLSN, rec.SnapshotDrives, rec.Replayed,
			rec.SkippedCovered, rec.Duplicates, rec.Truncations,
			rec.TruncatedBytes, rec.SegmentsDropped)
		if rec.SnapshotCorrupt {
			log.Printf("ssdserved: WARNING: snapshot was corrupt; state rebuilt from the WAL alone")
		}
	}

	gate.Ready(srv.Handler())
	log.Printf("ssdserved: serving on %s (model %s)", ln.Addr(), *modelPath)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *follow != "" {
		fol := &cluster.Follower{
			Upstream:     *follow,
			Apply:        srv.ApplyReplicated,
			PollInterval: *followPoll,
		}
		go func() { _ = fol.Run(ctx) }() // exits only on shutdown; pull errors are retried inside
		log.Printf("ssdserved: following %s (WAL stream replication)", *follow)
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("ssdserved: signal received, draining for up to %v", *drainFor)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("ssdserved: forced shutdown: %v", err)
		httpSrv.Close()
	}
	log.Printf("ssdserved: bye")
	return nil
}

// bootstrapModel trains a predictor on a simulated fleet and saves it,
// unless the model file already exists.
func bootstrapModel(path string, seed uint64, drives, lookahead, trees, workers int) error {
	if _, err := os.Stat(path); err == nil {
		log.Printf("ssdserved: model %s exists, skipping bootstrap", path)
		return nil
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	log.Printf("ssdserved: training bootstrap model (%d drives/model, lookahead %d, %d trees)",
		drives, lookahead, trees)
	study, err := core.GenerateStudy(seed, drives)
	if err != nil {
		return err
	}
	fcfg := forest.DefaultConfig()
	fcfg.Trees = trees
	fcfg.Seed = seed
	fcfg.Workers = workers
	pred, err := study.TrainPredictor(core.PredictorOptions{
		Lookahead:       lookahead,
		Factory:         forest.NewFactory(fcfg),
		Seed:            seed,
		Workers:         workers,
		HoldoutFraction: 0.25,
	})
	if err != nil {
		return err
	}
	if err := pred.Save(path); err != nil {
		return err
	}
	fmt.Printf("bootstrap model saved to %s (validation AUC %.3f)\n", path, pred.ValidationAUC)
	return nil
}
