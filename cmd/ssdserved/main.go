// Command ssdserved is the online fleet-scoring daemon: it ingests
// per-drive daily telemetry over HTTP, maintains a sharded in-memory
// fleet state, scores drives with a serialized random-forest predictor
// (hot-swappable at runtime), and serves the ranked watchlist the paper
// proposes for proactive fleet management (§5, Figures 14–15).
//
// Usage:
//
//	ssdserved -model pred.bin [-addr :8377] [-bootstrap]
//
// With -bootstrap, a missing model file is trained on a simulated fleet
// and saved to -model first, so the daemon can be tried end to end
// without any prior artifacts:
//
//	ssdserved -model /tmp/pred.bin -bootstrap
//	curl -s localhost:8377/healthz
//	curl -s -X POST localhost:8377/v1/ingest/batch -d @day.json
//	curl -s 'localhost:8377/v1/watchlist?k=10&threshold=0.5'
//	curl -s -X POST localhost:8377/v1/model/reload
//	curl -s localhost:8377/metrics
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ssdfail/internal/core"
	"ssdfail/internal/ml/forest"
	"ssdfail/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8377", "listen address")
		modelPath = flag.String("model", "ssdserved-model.bin", "predictor file (core.Predictor.Save format)")
		bootstrap = flag.Bool("bootstrap", false, "train and save a model to -model if the file is missing")
		seed      = flag.Uint64("seed", 42, "simulation seed for -bootstrap")
		drives    = flag.Int("drives", 150, "drives per model simulated for -bootstrap")
		lookahead = flag.Int("lookahead", 3, "prediction lookahead in days for -bootstrap")
		trees     = flag.Int("trees", 50, "random-forest size for -bootstrap")
		shards    = flag.Int("shards", serve.DefaultShards, "drive-store shard count")
		history   = flag.Int("history", serve.DefaultHistory, "daily reports retained per drive")
		workers   = flag.Int("workers", 0, "batch-scoring workers (0 = all CPUs)")
		threshold = flag.Float64("threshold", 0.9, "default watchlist score threshold (paper's low-FPR operating point)")
		k         = flag.Int("k", 50, "default watchlist length")
		maxBody   = flag.Int64("max-body", 8<<20, "maximum ingest request body in bytes")
		drainFor  = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain timeout")
	)
	flag.Parse()

	if *bootstrap {
		if err := bootstrapModel(*modelPath, *seed, *drives, *lookahead, *trees, *workers); err != nil {
			log.Fatalf("ssdserved: bootstrap: %v", err)
		}
	}

	srv, err := serve.New(serve.Config{
		ModelPath:          *modelPath,
		Shards:             *shards,
		History:            *history,
		Workers:            *workers,
		MaxBodyBytes:       *maxBody,
		WatchlistThreshold: *threshold,
		WatchlistK:         *k,
	})
	if err != nil {
		log.Fatalf("ssdserved: %v", err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("ssdserved: serving on %s (model %s)", *addr, *modelPath)

	select {
	case err := <-errc:
		log.Fatalf("ssdserved: %v", err)
	case <-ctx.Done():
	}
	log.Printf("ssdserved: signal received, draining for up to %v", *drainFor)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("ssdserved: forced shutdown: %v", err)
		httpSrv.Close()
	}
	log.Printf("ssdserved: bye")
}

// bootstrapModel trains a predictor on a simulated fleet and saves it,
// unless the model file already exists.
func bootstrapModel(path string, seed uint64, drives, lookahead, trees, workers int) error {
	if _, err := os.Stat(path); err == nil {
		log.Printf("ssdserved: model %s exists, skipping bootstrap", path)
		return nil
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	log.Printf("ssdserved: training bootstrap model (%d drives/model, lookahead %d, %d trees)",
		drives, lookahead, trees)
	study, err := core.GenerateStudy(seed, drives)
	if err != nil {
		return err
	}
	fcfg := forest.DefaultConfig()
	fcfg.Trees = trees
	fcfg.Seed = seed
	fcfg.Workers = workers
	pred, err := study.TrainPredictor(core.PredictorOptions{
		Lookahead:       lookahead,
		Factory:         forest.NewFactory(fcfg),
		Seed:            seed,
		Workers:         workers,
		HoldoutFraction: 0.25,
	})
	if err != nil {
		return err
	}
	if err := pred.Save(path); err != nil {
		return err
	}
	fmt.Printf("bootstrap model saved to %s (validation AUC %.3f)\n", path, pred.ValidationAUC)
	return nil
}
