// Command ssdrouter fronts a fleet of ssdserved nodes: it partitions
// drive IDs across them by consistent hashing, health-probes every
// endpoint, fails a partition over to its WAL-streaming follower when
// the primary goes dark, and answers fleet-wide queries (watchlist,
// /metrics rollups, remediation) by scatter-gather with per-node
// deadlines, hedged retries on the slow tail, and explicit
// partial-result degradation.
//
// Usage:
//
//	ssdrouter -addr :8370 \
//	    -node n1=http://127.0.0.1:8371 \
//	    -node n2=http://127.0.0.1:8372 -follower n2=f2=http://127.0.0.1:8382 \
//	    -node n3=http://127.0.0.1:8373
//
// Each -node declares one partition primary; -follower attaches a
// follower (itself an ssdserved started with -follow pointing at the
// primary) that the router promotes — stickily — when the primary
// misses enough probes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ssdfail/internal/cluster"
)

// stringList collects repeated flag values.
type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	if err := run(); err != nil {
		log.Printf("ssdrouter: %v", err)
		os.Exit(1)
	}
}

func run() error {
	var nodes, followers stringList
	var (
		addr       = flag.String("addr", ":8370", "listen address")
		vnodes     = flag.Int("vnodes", 0, "virtual nodes per partition on the hash ring (0 = 128)")
		probeIntvl = flag.Duration("probe-interval", 0, "health probe cadence (0 = 100ms)")
		downAfter  = flag.Int("down-after", 0, "consecutive missed probes before a node is down (0 = 3)")
		upAfter    = flag.Int("up-after", 0, "consecutive good probes before a node is up (0 = 2)")
		deadline   = flag.Duration("deadline", 0, "per-node scatter-gather deadline (0 = 2s)")
		hedgeAfter = flag.Duration("hedge-after", 0, "hedge a slow leg after this long (0 = 250ms, negative disables)")
		drainFor   = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain timeout")
	)
	flag.Var(&nodes, "node", "partition primary as name=url (repeatable)")
	flag.Var(&followers, "follower", "follower as primary=name=url (repeatable)")
	flag.Parse()

	if len(nodes) == 0 {
		return fmt.Errorf("at least one -node is required")
	}
	// Indices, not pointers: appending reallocates the slice, and a
	// pointer captured mid-build would mutate a stale backing array.
	byName := make(map[string]int)
	var cfgNodes []cluster.Node
	for _, spec := range nodes {
		name, url, ok := strings.Cut(spec, "=")
		if !ok || name == "" || url == "" {
			return fmt.Errorf("-node %q: want name=url", spec)
		}
		cfgNodes = append(cfgNodes, cluster.Node{Name: name, URL: url})
		byName[name] = len(cfgNodes) - 1
	}
	for _, spec := range followers {
		primary, rest, ok := strings.Cut(spec, "=")
		fname, furl, ok2 := strings.Cut(rest, "=")
		if !ok || !ok2 || primary == "" || fname == "" || furl == "" {
			return fmt.Errorf("-follower %q: want primary=name=url", spec)
		}
		i, found := byName[primary]
		if !found {
			return fmt.Errorf("-follower %q: unknown primary %q", spec, primary)
		}
		cfgNodes[i].FollowerName, cfgNodes[i].FollowerURL = fname, furl
	}

	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Nodes:           cfgNodes,
		Vnodes:          *vnodes,
		DownAfter:       *downAfter,
		UpAfter:         *upAfter,
		ProbeInterval:   *probeIntvl,
		PerNodeDeadline: *deadline,
		HedgeAfter:      *hedgeAfter,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rt.Start(ctx)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("ssdrouter: routing %d partitions on %s", len(cfgNodes), *addr)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("ssdrouter: signal received, draining for up to %v", *drainFor)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("ssdrouter: forced shutdown: %v", err)
		httpSrv.Close()
	}
	log.Printf("ssdrouter: bye")
	return nil
}
